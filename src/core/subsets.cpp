#include "core/subsets.h"

#include <algorithm>
#include <set>

#include "common/error.h"

namespace jigsaw {
namespace core {

void
validateSubsets(int n_bits, const std::vector<Subset> &subsets)
{
    fatalIf(subsets.empty(), "validateSubsets: no subsets given");
    for (std::size_t s = 0; s < subsets.size(); ++s) {
        const Subset &subset = subsets[s];
        const std::string where =
            "validateSubsets: subset " + std::to_string(s);
        fatalIf(subset.empty(), where + " is empty");
        std::set<int> seen;
        for (int bit : subset) {
            fatalIf(bit < 0 || bit >= n_bits,
                    where + " has bit " + std::to_string(bit) +
                        " outside [0, " + std::to_string(n_bits) + ")");
            fatalIf(!seen.insert(bit).second,
                    where + " repeats bit " + std::to_string(bit));
        }
    }
}

std::vector<Subset>
slidingWindowSubsets(int n_qubits, int subset_size)
{
    fatalIf(subset_size < 1 || subset_size > n_qubits,
            "slidingWindowSubsets: invalid subset size");
    std::vector<Subset> subsets;
    if (subset_size == n_qubits) {
        Subset all(static_cast<std::size_t>(n_qubits));
        for (int q = 0; q < n_qubits; ++q)
            all[static_cast<std::size_t>(q)] = q;
        subsets.push_back(std::move(all));
        return subsets;
    }
    std::set<Subset> seen;
    for (int start = 0; start < n_qubits; ++start) {
        Subset s;
        s.reserve(static_cast<std::size_t>(subset_size));
        for (int k = 0; k < subset_size; ++k)
            s.push_back((start + k) % n_qubits);
        std::sort(s.begin(), s.end());
        if (seen.insert(s).second)
            subsets.push_back(std::move(s));
    }
    return subsets;
}

std::vector<Subset>
randomSubsets(int n_qubits, int subset_size, int count, Rng &rng)
{
    fatalIf(subset_size < 1 || subset_size > n_qubits,
            "randomSubsets: invalid subset size");
    // Cap the request at C(n, size), computed with overflow care.
    double combinations = 1.0;
    for (int k = 0; k < subset_size; ++k) {
        combinations *= static_cast<double>(n_qubits - k) /
                        static_cast<double>(k + 1);
    }
    const int max_count = combinations > 1e6
                              ? count
                              : std::min<int>(count,
                                              static_cast<int>(
                                                  combinations + 0.5));

    std::set<Subset> seen;
    std::vector<Subset> subsets;
    int guard = 0;
    while (static_cast<int>(subsets.size()) < max_count) {
        Subset s = rng.sampleWithoutReplacement(n_qubits, subset_size);
        std::sort(s.begin(), s.end());
        if (seen.insert(s).second)
            subsets.push_back(std::move(s));
        panicIf(++guard > 1000 * max_count + 1000,
                "randomSubsets: failed to draw distinct subsets");
    }
    return subsets;
}

std::vector<Subset>
coveringRandomSubsets(int n_qubits, int subset_size, Rng &rng)
{
    fatalIf(subset_size < 1 || subset_size > n_qubits,
            "coveringRandomSubsets: invalid subset size");
    for (int attempt = 0; attempt < 10000; ++attempt) {
        std::vector<Subset> subsets =
            randomSubsets(n_qubits, subset_size, n_qubits, rng);
        std::vector<bool> covered(static_cast<std::size_t>(n_qubits),
                                  false);
        for (const Subset &s : subsets) {
            for (int q : s)
                covered[static_cast<std::size_t>(q)] = true;
        }
        if (std::all_of(covered.begin(), covered.end(),
                        [](bool c) { return c; })) {
            return subsets;
        }
    }
    panicIf(true, "coveringRandomSubsets: could not cover all qubits");
    return {};
}

} // namespace core
} // namespace jigsaw
