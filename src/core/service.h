/**
 * @file
 * JigsawService: many programs through the pipeline, concurrently,
 * with cross-program execution batching.
 *
 * The service accepts N programs and drives one JigsawSession per
 * program over the shared thread pool (common/parallel.h TaskGroup).
 * Sessions share the process-wide transpile memo and, when programs
 * share an executor, its PMF/state caches — both thread-safe — so
 * concurrent programs deduplicate compilation and evolution work
 * exactly like sequential runs do.
 *
 * On top of that, programs the service builds executors for are
 * routed through the cross-program merge path (MergePolicy): their
 * sessions advance to the schedule stage concurrently, the schedules
 * are merged by (device fingerprint, shared CPM gate prefix), each
 * merged group executes as one multi-program Executor::runBatch
 * against one shared per-device executor, and the split-back results
 * resume the sessions for concurrent reconstruction. A (circuit,
 * device) pair submitted by many programs is therefore evolved once
 * for the whole batch instead of once per program — the service wins
 * even on a single core.
 *
 * Determinism: each program samples from its own seeded stream
 * (private executor on the legacy path, per-program Rng on the merged
 * path), so every program's result is bitwise-identical to a
 * sequential runJigsaw() with the same inputs, whatever the pool
 * size, completion order, or merge policy — see
 * core::executeMergedSchedules for the argument. Programs sharing a
 * caller-supplied executor stay data-race-free but interleave its RNG
 * stream nondeterministically.
 */
#ifndef JIGSAW_CORE_SERVICE_H
#define JIGSAW_CORE_SERVICE_H

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/session.h"
#include "obs/registry.h"

namespace jigsaw {

namespace obs {
class TraceRecorder; // obs/trace.h
} // namespace obs

namespace core {

/** One program submitted to the service. */
struct ServiceProgram
{
    ServiceProgram(circuit::QuantumCircuit circuit_,
                   device::DeviceModel device_, std::uint64_t trials_,
                   JigsawOptions options_ = {},
                   std::uint64_t executor_seed = 1234,
                   std::shared_ptr<sim::Executor> executor_ = nullptr)
        : circuit(std::move(circuit_)), device(std::move(device_)),
          trials(trials_), options(std::move(options_)),
          executor(std::move(executor_)), executorSeed(executor_seed)
    {
    }

    circuit::QuantumCircuit circuit;
    device::DeviceModel device;
    std::uint64_t trials;
    JigsawOptions options;
    /**
     * Executor for this program. When null, the service owns the
     * executor choice: on the merged path programs on one device
     * share a thread-safe NoisySimulator while sampling from a
     * private Rng(executorSeed) stream; on the legacy path the
     * program gets a private NoisySimulator(device,
     * {.seed = executorSeed}). Both give the program the exact draw
     * stream a sequential run would. Caller-supplied executors are
     * never merged (the service cannot know their noise model is
     * shareable); such programs run as independent sessions at the
     * cost of a nondeterministic RNG interleaving when shared.
     */
    std::shared_ptr<sim::Executor> executor;
    std::uint64_t executorSeed; ///< Seed for the program's draw stream.
    /**
     * Fair-share tag for the streaming scheduler: dispatch runs
     * deficit round-robin across tenants inside each aged priority
     * class, so one hot tenant cannot starve the rest. Empty is the
     * default tenant. Ignored by the batch run() path.
     */
    std::string tenant;
    /**
     * Streaming SLO: a job still undispatched this many milliseconds
     * after submission is expired (JobState::Expired; wait() throws
     * DeadlineExceededError), including jobs waiting in an open merge
     * window or awaiting a retry. 0 disables the deadline. Ignored by
     * the batch run() path.
     */
    double deadlineMs = 0.0;
};

/**
 * When the service merges programs' execution schedules into
 * cross-program batches.
 */
enum class MergePolicy
{
    /**
     * Merge the service-executor programs whose (circuit, device)
     * pair two or more of them share — the programs whose gate
     * prefixes will actually dedupe; everything else runs as
     * independent sessions, keeping session-level sampling
     * concurrency (merging buys them nothing). The default.
     */
    Auto,
    /** Route every service-executor program through the merge path. */
    Always,
    /** Disable merging: every program is an independent session. */
    Never,
};

/** Priority classes for streaming submission (High dispatches first). */
enum class Priority
{
    High = 0,
    Normal = 1,
    Low = 2,
};

/** Number of Priority classes. */
inline constexpr std::size_t kPriorityClasses = 3;

/** Opaque identifier of one streaming job. */
struct JobHandle
{
    std::uint64_t id = 0;
};

/**
 * Opaque identifier of one parametric program compiled once via
 * compileParametric() and re-submitted per iteration with fresh
 * rotation angles via submitIteration() — the iterative-VQA client
 * shape. All iterations share the prototype's skeleton, so they hit
 * the transpile memo (angles re-bound into the cached routing), the
 * executor's split-prefix evolution cache, and one merge-window key.
 */
struct ParametricHandle
{
    std::uint64_t id = 0;
};

/**
 * Outcome of one streaming submit(). With bounded admission
 * (StreamOptions::maxQueuedJobs) a submit can be shed: admitted is
 * false, the handle is empty, and tryLaterAfterMs is a finite
 * backoff hint derived from the scheduler's observed drain rate —
 * after roughly that long the backlog should have drained below this
 * priority class's shed threshold.
 */
struct SubmitResult
{
    bool admitted = false;
    JobHandle handle{};          ///< Valid only when admitted.
    double tryLaterAfterMs = 0.0; ///< Retry hint when shed; else 0.

    explicit operator bool() const { return admitted; }
};

/** Where a streaming job currently is. */
enum class JobState
{
    Queued,    ///< Admitted, waiting for its pipeline stages to start.
    Preparing, ///< Plan/compile/schedule stages running on the pool.
    /** Scheduled: collecting partners in an open merge window, or (a
     *  window-less solo job, closed window) awaiting a dispatch slot. */
    Windowed,
    Dispatched, ///< Executing (merged window or lone session).
    Done,       ///< Result available.
    Failed,     ///< Terminal error; wait() rethrows it.
    Cancelled,  ///< Withdrawn before dispatch; wait() throws.
    /** Missed its ServiceProgram::deadlineMs SLO before dispatch;
     *  wait() throws DeadlineExceededError. */
    Expired,
};

/** Snapshot of one streaming job, returned by poll(). */
struct JobStatus
{
    JobState state = JobState::Queued;
    Priority priority = Priority::Normal;
    /** Transient-failure retries this job has consumed so far. */
    std::uint32_t attempts = 0;
    /** Submit -> dispatch (admission + window wait); 0 until known. */
    double queueWaitMs = 0.0;
    /** Dispatch -> terminal (execute + reconstruct); 0 until known. */
    double executeMs = 0.0;
    /** Submit -> terminal (what the submitter observed); 0 until known. */
    double totalMs = 0.0;
};

class Transport; // core/transport.h

/**
 * Worker execution tier (core/transport.h, core/worker.h): merged
 * windows dispatched as leases to a fleet of in-process workers, each
 * owning its own per-device executors and rebuilding every job's draw
 * stream from Rng(executorSeed) — results stay bitwise-identical to
 * local execution. The scheduler supervises each lease and degrades
 * gracefully: a lost lease (worker death, stall past the deadline,
 * transport error) is re-dispatched to the fleet up to workerRetries
 * times, then executed locally via the regular merged path — an
 * empty or all-dead fleet costs throughput, never correctness, and
 * lost leases never charge the jobs' transient-retry budgets.
 */
struct WorkerOptions
{
    /** Fleet size. 0 disables the worker tier entirely (every window
     *  executes locally, the pre-worker behavior). */
    std::size_t workers = 0;
    /** Lease deadline: a window not answered this long after dispatch
     *  is revoked and re-dispatched (catches stalled workers and
     *  responses lost in flight). */
    double leaseTimeoutMs = 60000.0;
    /** Worker heartbeat interval (carried in each lease's request
     *  envelope; the in-process fleet beats at this period). */
    double heartbeatMs = 5.0;
    /** A lease whose worker has not heartbeat for this long is
     *  revoked as worker death (the worker is assumed gone). */
    double heartbeatTimeoutMs = 250.0;
    /** Fleet re-dispatches per window before local fallback. */
    std::size_t workerRetries = 2;
};

/** Streaming-scheduler configuration (JigsawService submit/poll). */
struct StreamOptions
{
    /**
     * When windows merge. Auto windows jobs sharing a (circuit,
     * device) pair; Always windows every service-executor job on the
     * same device; Never dispatches every job immediately as an
     * independent session (today's batch-path behavior, job by job).
     */
    MergePolicy mergePolicy = MergePolicy::Auto;
    /**
     * How long an open merge window waits for more compatible jobs
     * before dispatching, from the moment it opened. Priority::High
     * jobs close their window immediately — they never trade latency
     * for merging. 0 dispatches every job on readiness.
     */
    double windowMs = 5.0;
    /** Close a window once this many jobs joined it. */
    std::size_t windowMaxJobs = 8;
    /**
     * Dispatched-but-unfinished window/job cap; further dispatches
     * queue in priority order. 0 sizes it to the thread pool
     * (parallelThreads()), which is what makes priority meaningful
     * under load — with unbounded dispatch the pool's FIFO queue
     * decides instead.
     */
    std::size_t maxInFlight = 0;
    /**
     * Fairness aging: a dispatch candidate is promoted one priority
     * class per this many milliseconds spent waiting, so sustained
     * High traffic cannot starve Low jobs. <=0 disables aging.
     */
    double agingMs = 100.0;
    /**
     * Bounded admission: cap on undispatched jobs (queued, preparing,
     * or windowed). A submit that would push the backlog past its
     * class's shed threshold (shedFractions) is rejected with a
     * finite SubmitResult::tryLaterAfterMs hint instead of admitted.
     * 0 admits everything (the pre-robustness behavior). Sustained
     * backlog near the cap also shrinks the effective merge window
     * toward immediate dispatch (latency over merging), restoring it
     * as the queue drains.
     */
    std::size_t maxQueuedJobs = 0;
    /**
     * Per-class shed thresholds as fractions of maxQueuedJobs,
     * indexed by Priority (High, Normal, Low). Class c is shed once
     * the backlog reaches ceil(shedFractions[c] * maxQueuedJobs), so
     * with the defaults Low sheds first and High last — High keeps
     * the full queue. Ignored when maxQueuedJobs is 0.
     */
    std::array<double, kPriorityClasses> shedFractions{1.0, 0.8, 0.6};
    /**
     * Fault tolerance: transient failures (TransientError, e.g. a
     * flaky backend) restart the job's whole pipeline up to this many
     * times with capped exponential backoff. Terminal failures never
     * retry. A full restart replays the job's private draw stream
     * from Rng(executorSeed), so a retried job's result is still
     * bitwise-identical to an undisturbed sequential run.
     */
    std::size_t maxRetries = 3;
    double retryBackoffMs = 1.0;     ///< First-retry backoff.
    double retryBackoffMaxMs = 50.0; ///< Exponential backoff cap.
    /**
     * Result retention: with a non-zero cap, delivered results (jobs
     * whose wait() returned) beyond this many are evicted oldest
     * first, and their handles become unknown. release() evicts
     * eagerly. 0 retains every terminal job for the scheduler's
     * lifetime (the pre-robustness behavior).
     */
    std::size_t resultRetention = 0;
    /**
     * Burst detector ceiling for the grow direction of adaptive
     * windows, as a multiple of windowMs. Shrink-under-overload
     * scales the effective merge window down when the backlog nears
     * maxQueuedJobs; the burst detector scales it back up while jobs
     * arrive faster than they drain (EWMA inter-arrival vs drain
     * rate), because a sustained burst is exactly when wider windows
     * merge best. 1.0 (default) only counteracts the shrink — the
     * window never exceeds its configured width; >1 lets bursts grow
     * it past windowMs up to this factor. Values < 1 are treated
     * as 1.
     */
    double burstGrowMax = 1.0;
    /**
     * Prometheus metrics endpoint: when >= 0, the scheduler serves
     * the process-wide registry over HTTP/1.0 on 127.0.0.1:<port>
     * for its lifetime (0 picks an ephemeral port; see
     * StreamingScheduler::metricsPort()). -1 (default) binds nothing
     * — metrics stay reachable via JigsawService::metricsText().
     */
    int metricsPort = -1;
    /**
     * Per-job pipeline tracing: when set, every job records one span
     * per (attempt, stage) through plan -> compile -> window ->
     * dispatch -> execute -> reconstruct into this recorder (see
     * obs/trace.h). Null (default) records nothing and costs one
     * pointer test per stage.
     */
    std::shared_ptr<obs::TraceRecorder> trace;
    /** Worker execution tier (see WorkerOptions). Disabled (workers
     *  = 0) by default. */
    WorkerOptions worker;
    /**
     * Execution backend override: when set, merged windows dispatch
     * over THIS transport (worker.workers is then ignored); when
     * null and worker.workers > 0, the scheduler builds its own
     * core::InProcTransport fleet. Tests stub this seam to model
     * arbitrary backend pathologies.
     */
    std::shared_ptr<Transport> transport;
};

/** Counters and samples of one streaming scheduler's lifetime. */
struct StreamStats
{
    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::size_t failed = 0;
    std::size_t cancelled = 0;
    std::size_t mergedWindows = 0;  ///< Windows dispatched with >= 2 jobs.
    std::size_t loneDispatches = 0; ///< Jobs dispatched alone.
    std::size_t mergedJobs = 0;     ///< Jobs that rode a merged window.
    std::size_t crossProgramGroups = 0;  ///< Sum over merged windows.
    std::size_t pooledGlobalBatches = 0; ///< Pooled global runBatch calls.
    std::size_t pooledGlobalPrograms = 0; ///< Jobs with pooled globals.
    /** @name Overload / fault-tolerance counters. @{ */
    std::size_t shed = 0;    ///< Submits rejected by bounded admission.
    std::size_t expired = 0; ///< Jobs that missed their deadlineMs SLO.
    std::size_t retries = 0; ///< Transient-failure pipeline restarts.
    /** Jobs re-queued solo after their merged window's execution
     *  threw (window-poisoning quarantine). */
    std::size_t quarantinedJobs = 0;
    /** Merge windows opened with a backlog-shrunk windowMs. */
    std::size_t windowShrinks = 0;
    /** Merge windows opened with a burst-grown windowMs (the burst
     *  detector outweighed any overload shrink). */
    std::size_t windowGrows = 0;
    std::size_t released = 0; ///< Terminal jobs dropped via release().
    std::size_t evicted = 0;  ///< Delivered results evicted (retention).
    /** Shed submits by priority class (exact, not sampled). */
    std::array<std::size_t, kPriorityClasses> shedByClass{};
    /** Completed jobs by priority class (exact, not sampled). */
    std::array<std::size_t, kPriorityClasses> completedByClass{};
    /** Jobs that produced a latency sample (completed + failed): the
     *  histograms' population size. */
    std::size_t jobsObserved = 0;
    /** @} */
    /** @name Worker-tier lease counters (all zero without a worker
     * fleet). A window dispatched to the fleet is covered by exactly
     * one live lease at a time; a lost lease is re-dispatched
     * (redispatches) until workerRetries is exhausted or no worker is
     * alive, then executed locally (localFallbacks) — lost leases
     * never charge the member jobs' retry budgets. @{ */
    std::size_t leasesGranted = 0; ///< Requests delivered to the fleet.
    /** Leases revoked at their deadline: a stalled worker or a
     *  response lost in flight (transport.recv). */
    std::size_t leasesExpired = 0;
    /** Leases revoked for worker death (missed heartbeats), a
     *  transport send failure, or a fleet that died under a queued
     *  request. */
    std::size_t leasesRevoked = 0;
    std::size_t redispatches = 0;  ///< Lost-lease re-sends to the fleet.
    /** Worker-tier windows executed via the local merged path instead
     *  (dead fleet or workerRetries exhausted). */
    std::size_t localFallbacks = 0;
    /** Late responses of revoked leases, discarded (their window
     *  already completed another way). */
    std::size_t staleResponses = 0;
    /** Successful window executions per worker index. */
    std::vector<std::size_t> workerCompleted;
    /** @} */
    /** @name Parametric-serving cache counters, snapshotted by
     * stats(). The transpile counters are process-wide (the memo is
     * shared across schedulers); the executor counters aggregate this
     * scheduler's per-device shared executors. @{ */
    std::size_t parametricPrograms = 0;   ///< compileParametric() calls.
    std::size_t parametricIterations = 0; ///< submitIteration() calls.
    std::uint64_t transpileHits = 0;      ///< Memo hits (lifetime).
    std::uint64_t transpileMisses = 0;    ///< Full transpiles (lifetime).
    /** Memo hits served by re-binding new angles into a cached
     *  same-skeleton compilation (subset of transpileHits). */
    std::uint64_t transpileRebinds = 0;
    std::uint64_t executorPmfHits = 0;    ///< Executor PMF-cache hits.
    std::uint64_t executorPmfMisses = 0;  ///< Executor PMF-cache misses.
    /** Skeleton split-prefix evolution cache hits: evolutions that
     *  reused a cached pre-diagonal-tail state and re-applied only
     *  the re-bound diagonal gates. */
    std::uint64_t prefixStateHits = 0;
    std::uint64_t prefixStateMisses = 0; ///< Split prefixes evolved.
    /** @} */
    /** @name SIMD kernel-backend dispatch totals, snapshotted from
     * the process-wide counters by stats() (lifetime, like the
     * transpile counters — the kernel layer is shared by every
     * scheduler). Confirms which backend the hot loops actually ran
     * on. @{ */
    std::uint64_t simdScalarCalls = 0;
    std::uint64_t simdAvx2Calls = 0;
    std::uint64_t simdAvx512Calls = 0;
    /** @} */
    /**
     * @name Per-class latency histograms of completed/failed jobs
     * (cancelled and expired jobs never ran, so they contribute
     * nothing). Fixed geometric buckets (obs::defaultLatencyBoundsMs)
     * shared with the process-wide registry histograms, so the same
     * percentile is derivable from a scrape delta; memory is bounded
     * by construction (one bucket array per class), which is what
     * replaced the old per-job sample reservoir.
     * @{
     */
    std::array<obs::HistogramData, kPriorityClasses> latencyByClass;
    std::array<obs::HistogramData, kPriorityClasses> queueWaitByClass;
    std::array<obs::HistogramData, kPriorityClasses> executeByClass;
    /** @} */

    /** @name Guarded nearest-rank percentiles, thin views over the
     *  histograms above (0 with no observations; the exact value with
     *  one; otherwise the selected bucket's observed mean, clamped to
     *  the bucket). @{ */
    double latencyPercentileMs(double q) const;
    double latencyPercentileMs(Priority cls, double q) const;
    double queueWaitPercentileMs(Priority cls, double q) const;
    double executePercentileMs(Priority cls, double q) const;
    /** @} */
};

/** Service configuration. */
struct ServiceOptions
{
    MergePolicy mergePolicy = MergePolicy::Auto;
    /** Streaming (submit/poll) scheduler knobs; mergePolicy for the
     *  streaming path lives in here, independent of the batch path's. */
    StreamOptions stream;
};

/**
 * Nearest-rank percentile of @p samples (q in [0, 1]). Guarded
 * against the degenerate ends: an empty sample set yields 0, a single
 * sample yields that sample for every q, and a non-finite or
 * out-of-range q clamps into [0, 1] (NaN counts as 0). Shared by the
 * batch-path ServiceStats and the streaming StreamStats.
 */
double percentileNearestRank(std::vector<double> samples, double q);

/** What one service run did, beyond the per-program results. */
struct ServiceStats
{
    std::size_t programs = 0; ///< Programs completed.
    double wallMs = 0.0;      ///< Wall time of the whole batch.
    /**
     * Per-program latency: batch start to that program's completion,
     * in submission order (the service-latency a caller of program i
     * observed).
     */
    std::vector<double> latenciesMs;
    /** @name Merge-path counters (zero under MergePolicy::Never).
     *  @{ */
    std::size_t mergedPrograms = 0; ///< Programs on the merged path.
    std::size_t mergedGroups = 0;   ///< Merged batch groups executed.
    std::size_t crossProgramGroups = 0; ///< Groups spanning programs.
    std::size_t pooledGlobalBatches = 0; ///< Pooled global runBatch calls.
    std::size_t pooledGlobalPrograms = 0; ///< Programs with pooled globals.
    /** @} */
    /** @name Parametric-serving cache counters for THIS run: the
     * transpile counters are deltas across the run (the memo is
     * process-wide), the executor counters aggregate the executors
     * the run built (merged-path shared executors and legacy-path
     * private ones). @{ */
    std::uint64_t transpileHits = 0;     ///< Memo hits during the run.
    std::uint64_t transpileMisses = 0;   ///< Full transpiles during it.
    std::uint64_t transpileRebinds = 0;  ///< Angle re-bind hits.
    std::uint64_t executorPmfHits = 0;   ///< Executor PMF-cache hits.
    std::uint64_t executorPmfMisses = 0; ///< Executor PMF-cache misses.
    std::uint64_t prefixStateHits = 0;   ///< Split-prefix state reuses.
    std::uint64_t prefixStateMisses = 0; ///< Split prefixes evolved.
    /** @} */
    /** @name SIMD kernel-backend dispatch counts for THIS run: deltas
     * of the process-wide simd::dispatchCounters() across the batch
     * (the kernel layer sits below every executor, so per-executor
     * attribution is not meaningful). @{ */
    std::uint64_t simdScalarCalls = 0;   ///< Scalar-table invocations.
    std::uint64_t simdAvx2Calls = 0;     ///< AVX2-table invocations.
    std::uint64_t simdAvx512Calls = 0;   ///< AVX-512-table invocations.
    /** @} */

    /** Throughput of the batch. */
    double programsPerSecond() const
    {
        return wallMs > 0.0
                   ? 1000.0 * static_cast<double>(programs) / wallMs
                   : 0.0;
    }

    /**
     * Latency percentile over latenciesMs (nearest-rank via
     * percentileNearestRank; @p q in [0, 1], e.g. 0.5 for p50, 0.95
     * for p95). Guarded at the degenerate ends: 0 when no latencies
     * were recorded, the single sample when only one was.
     */
    double latencyPercentileMs(double q) const;
};

/**
 * Sequential reference for the service: the same programs, one
 * runJigsaw after another, each with the executor the service would
 * use on its legacy path (the caller-supplied one, else a fresh
 * default-seeded NoisySimulator). This single definition is what the
 * service's bitwise-equivalence tests and benches compare against.
 */
std::vector<JigsawResult>
runProgramsSequentially(const std::vector<ServiceProgram> &programs);

class StreamingScheduler; // core/scheduler.h

class JigsawService
{
  public:
    explicit JigsawService(ServiceOptions options = {});
    ~JigsawService(); // drains any streaming jobs still in flight

    JigsawService(const JigsawService &) = delete;
    JigsawService &operator=(const JigsawService &) = delete;

    /**
     * Run every program to completion and return their results in
     * submission order. Rethrows the first per-program failure (by
     * submission order) after all programs finished. Stats of the
     * last run are available from stats().
     */
    std::vector<JigsawResult> run(const std::vector<ServiceProgram> &programs);

    /** @name Streaming API (core/scheduler.h does the work).
     *
     * submit() admits one program and returns immediately; the
     * scheduler windows compatible jobs for cross-program merged
     * execution and every job's result stays bitwise-identical to a
     * sequential runJigsaw with the same inputs. All five calls are
     * thread-safe against each other — concurrent submitters are the
     * intended client shape.
     * @{ */
    /** Admit @p program (or shed it under bounded admission — check
     *  SubmitResult::admitted); the handle is this service's
     *  poll/wait key. */
    SubmitResult submit(ServiceProgram program,
                        Priority priority = Priority::Normal);
    /** Status snapshot, or std::nullopt for an unknown handle. */
    std::optional<JobStatus> poll(JobHandle handle) const;
    /** Block until terminal; returns the result or rethrows the
     *  job's failure (std::runtime_error for a cancelled job,
     *  DeadlineExceededError for an expired one). */
    JigsawResult wait(JobHandle handle);
    /**
     * Compile @p prototype once for iterative re-submission: validates
     * that the circuit carries rotation parameters, prewarms the
     * process-wide transpile memo (global + CPM compilations), and
     * registers the program as this handle's prototype. Iterations
     * then submit via submitIteration() with fresh angles — each pays
     * only an angle re-bind into the cached routing plus the diagonal
     * tail of the evolution, never a recompile. Thread-safe.
     */
    ParametricHandle compileParametric(ServiceProgram prototype);
    /**
     * Submit one iteration of @p handle's prototype with @p angles
     * re-bound into its circuit (flattened gate-order parameter list;
     * the size must equal the prototype's parameterCount()). Behaves
     * exactly like submit() of the re-bound program — same admission,
     * windowing, determinism, and result contract. Throws
     * std::invalid_argument semantics (fatal) for an unknown handle.
     */
    SubmitResult submitIteration(ParametricHandle handle,
                                 const std::vector<double> &angles,
                                 Priority priority = Priority::Normal);
    /** Withdraw a not-yet-dispatched job (true on success). */
    bool cancel(JobHandle handle);
    /** Drop a terminal job's result and bookkeeping; its handle
     *  becomes unknown. False while the job is live (or already
     *  released). */
    bool release(JobHandle handle);
    /** Block until every submitted job is terminal. */
    void drain();
    /** Streaming counters/latency samples (snapshot; zero before the
     *  first submit()). */
    StreamStats streamStats() const;
    /** @} */

    /**
     * The process-wide metrics registry rendered as Prometheus text
     * exposition — the same body the optional HTTP endpoint
     * (StreamOptions::metricsPort) serves. Covers the stream
     * counters (shed/expired/retries/quarantine/eviction/lease),
     * merge counters, cache hit rates, and SIMD dispatch totals.
     */
    std::string metricsText() const;

    /** Options in effect. */
    const ServiceOptions &options() const { return options_; }

    /** Stats of the most recent run(). */
    const ServiceStats &stats() const { return stats_; }

  private:
    StreamingScheduler &scheduler();

    ServiceOptions options_;
    ServiceStats stats_;
    mutable std::mutex schedulerMutex_; ///< Guards lazy creation only.
    std::unique_ptr<StreamingScheduler> scheduler_;
};

} // namespace core
} // namespace jigsaw

#endif // JIGSAW_CORE_SERVICE_H
