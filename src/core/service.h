/**
 * @file
 * JigsawService: many programs through the pipeline, concurrently,
 * with cross-program execution batching.
 *
 * The service accepts N programs and drives one JigsawSession per
 * program over the shared thread pool (common/parallel.h TaskGroup).
 * Sessions share the process-wide transpile memo and, when programs
 * share an executor, its PMF/state caches — both thread-safe — so
 * concurrent programs deduplicate compilation and evolution work
 * exactly like sequential runs do.
 *
 * On top of that, programs the service builds executors for are
 * routed through the cross-program merge path (MergePolicy): their
 * sessions advance to the schedule stage concurrently, the schedules
 * are merged by (device fingerprint, shared CPM gate prefix), each
 * merged group executes as one multi-program Executor::runBatch
 * against one shared per-device executor, and the split-back results
 * resume the sessions for concurrent reconstruction. A (circuit,
 * device) pair submitted by many programs is therefore evolved once
 * for the whole batch instead of once per program — the service wins
 * even on a single core.
 *
 * Determinism: each program samples from its own seeded stream
 * (private executor on the legacy path, per-program Rng on the merged
 * path), so every program's result is bitwise-identical to a
 * sequential runJigsaw() with the same inputs, whatever the pool
 * size, completion order, or merge policy — see
 * core::executeMergedSchedules for the argument. Programs sharing a
 * caller-supplied executor stay data-race-free but interleave its RNG
 * stream nondeterministically.
 */
#ifndef JIGSAW_CORE_SERVICE_H
#define JIGSAW_CORE_SERVICE_H

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/session.h"

namespace jigsaw {
namespace core {

/** One program submitted to the service. */
struct ServiceProgram
{
    ServiceProgram(circuit::QuantumCircuit circuit_,
                   device::DeviceModel device_, std::uint64_t trials_,
                   JigsawOptions options_ = {},
                   std::uint64_t executor_seed = 1234,
                   std::shared_ptr<sim::Executor> executor_ = nullptr)
        : circuit(std::move(circuit_)), device(std::move(device_)),
          trials(trials_), options(std::move(options_)),
          executor(std::move(executor_)), executorSeed(executor_seed)
    {
    }

    circuit::QuantumCircuit circuit;
    device::DeviceModel device;
    std::uint64_t trials;
    JigsawOptions options;
    /**
     * Executor for this program. When null, the service owns the
     * executor choice: on the merged path programs on one device
     * share a thread-safe NoisySimulator while sampling from a
     * private Rng(executorSeed) stream; on the legacy path the
     * program gets a private NoisySimulator(device,
     * {.seed = executorSeed}). Both give the program the exact draw
     * stream a sequential run would. Caller-supplied executors are
     * never merged (the service cannot know their noise model is
     * shareable); such programs run as independent sessions at the
     * cost of a nondeterministic RNG interleaving when shared.
     */
    std::shared_ptr<sim::Executor> executor;
    std::uint64_t executorSeed; ///< Seed for the program's draw stream.
};

/**
 * When the service merges programs' execution schedules into
 * cross-program batches.
 */
enum class MergePolicy
{
    /**
     * Merge the service-executor programs whose (circuit, device)
     * pair two or more of them share — the programs whose gate
     * prefixes will actually dedupe; everything else runs as
     * independent sessions, keeping session-level sampling
     * concurrency (merging buys them nothing). The default.
     */
    Auto,
    /** Route every service-executor program through the merge path. */
    Always,
    /** Disable merging: every program is an independent session. */
    Never,
};

/** Service configuration. */
struct ServiceOptions
{
    MergePolicy mergePolicy = MergePolicy::Auto;
};

/** What one service run did, beyond the per-program results. */
struct ServiceStats
{
    std::size_t programs = 0; ///< Programs completed.
    double wallMs = 0.0;      ///< Wall time of the whole batch.
    /**
     * Per-program latency: batch start to that program's completion,
     * in submission order (the service-latency a caller of program i
     * observed).
     */
    std::vector<double> latenciesMs;
    /** @name Merge-path counters (zero under MergePolicy::Never).
     *  @{ */
    std::size_t mergedPrograms = 0; ///< Programs on the merged path.
    std::size_t mergedGroups = 0;   ///< Merged batch groups executed.
    std::size_t crossProgramGroups = 0; ///< Groups spanning programs.
    /** @} */

    /** Throughput of the batch. */
    double programsPerSecond() const
    {
        return wallMs > 0.0
                   ? 1000.0 * static_cast<double>(programs) / wallMs
                   : 0.0;
    }

    /**
     * Latency percentile over latenciesMs (nearest-rank; @p q in
     * [0, 1], e.g. 0.5 for p50, 0.95 for p95). 0 when no latencies
     * were recorded.
     */
    double latencyPercentileMs(double q) const;
};

/**
 * Sequential reference for the service: the same programs, one
 * runJigsaw after another, each with the executor the service would
 * use on its legacy path (the caller-supplied one, else a fresh
 * default-seeded NoisySimulator). This single definition is what the
 * service's bitwise-equivalence tests and benches compare against.
 */
std::vector<JigsawResult>
runProgramsSequentially(const std::vector<ServiceProgram> &programs);

class JigsawService
{
  public:
    explicit JigsawService(ServiceOptions options = {})
        : options_(options)
    {
    }

    /**
     * Run every program to completion and return their results in
     * submission order. Rethrows the first per-program failure (by
     * submission order) after all programs finished. Stats of the
     * last run are available from stats().
     */
    std::vector<JigsawResult> run(const std::vector<ServiceProgram> &programs);

    /** Options in effect. */
    const ServiceOptions &options() const { return options_; }

    /** Stats of the most recent run(). */
    const ServiceStats &stats() const { return stats_; }

  private:
    ServiceOptions options_;
    ServiceStats stats_;
};

} // namespace core
} // namespace jigsaw

#endif // JIGSAW_CORE_SERVICE_H
