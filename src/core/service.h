/**
 * @file
 * JigsawService: many programs through the pipeline, concurrently.
 *
 * The service accepts N programs and schedules one JigsawSession per
 * program over the shared thread pool (common/parallel.h TaskGroup).
 * Sessions share the process-wide transpile memo and, when programs
 * share an executor, its PMF/state caches — both thread-safe — so
 * concurrent programs deduplicate compilation and evolution work
 * exactly like sequential runs do.
 *
 * Determinism: each program that brings (or is given) its own seeded
 * executor produces a result bitwise-identical to a sequential
 * runJigsaw() with the same inputs, whatever the pool size or
 * completion order — every parallel reduction in the pipeline runs in
 * a fixed order, and results are returned in submission order.
 * Programs sharing one executor stay data-race-free but interleave
 * its RNG stream nondeterministically.
 */
#ifndef JIGSAW_CORE_SERVICE_H
#define JIGSAW_CORE_SERVICE_H

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/session.h"

namespace jigsaw {
namespace core {

/** One program submitted to the service. */
struct ServiceProgram
{
    ServiceProgram(circuit::QuantumCircuit circuit_,
                   device::DeviceModel device_, std::uint64_t trials_,
                   JigsawOptions options_ = {},
                   std::uint64_t executor_seed = 1234,
                   std::shared_ptr<sim::Executor> executor_ = nullptr)
        : circuit(std::move(circuit_)), device(std::move(device_)),
          trials(trials_), options(std::move(options_)),
          executor(std::move(executor_)), executorSeed(executor_seed)
    {
    }

    circuit::QuantumCircuit circuit;
    device::DeviceModel device;
    std::uint64_t trials;
    JigsawOptions options;
    /**
     * Executor for this program. When null, the service builds a
     * NoisySimulator(device, {.seed = executorSeed}) — giving every
     * program a private, deterministic draw stream. Programs may share
     * one executor (the caches are thread-safe) at the cost of a
     * nondeterministic interleaving of its RNG.
     */
    std::shared_ptr<sim::Executor> executor;
    std::uint64_t executorSeed; ///< Seed for the default executor.
};

/** What one service run did, beyond the per-program results. */
struct ServiceStats
{
    std::size_t programs = 0; ///< Programs completed.
    double wallMs = 0.0;      ///< Wall time of the whole batch.

    /** Throughput of the batch. */
    double programsPerSecond() const
    {
        return wallMs > 0.0
                   ? 1000.0 * static_cast<double>(programs) / wallMs
                   : 0.0;
    }
};

/**
 * Sequential reference for the service: the same programs, one
 * runJigsaw after another, each with the executor the service would
 * use (the caller-supplied one, else a fresh default-seeded
 * NoisySimulator). This single definition is what the service's
 * bitwise-equivalence tests and benches compare against.
 */
std::vector<JigsawResult>
runProgramsSequentially(const std::vector<ServiceProgram> &programs);

class JigsawService
{
  public:
    /**
     * Run every program to completion, concurrently, and return their
     * results in submission order. Rethrows the first per-program
     * failure after all programs finished. Stats of the last run are
     * available from stats().
     */
    std::vector<JigsawResult> run(const std::vector<ServiceProgram> &programs);

    /** Stats of the most recent run(). */
    const ServiceStats &stats() const { return stats_; }

  private:
    ServiceStats stats_;
};

} // namespace core
} // namespace jigsaw

#endif // JIGSAW_CORE_SERVICE_H
