/**
 * @file
 * Transport: the typed execution-backend seam of the streaming
 * scheduler's worker tier.
 *
 * ROADMAP item 1's distribution boundary: a merged window is already
 * a self-contained dispatch unit (enabled MergeSources + the
 * incrementally maintained MergedSchedule in, per-job ExecutionResults
 * back into JigsawSession::adoptExecution), so the scheduler can hand
 * it to a remote executor without touching the pipeline. This header
 * models that hand-off as two explicit port/queue edges — modeled on
 * the typed node/port dataflow idiom rather than ad-hoc calls:
 *
 *     scheduler --send(WindowRequest)--> [request queue] --> workers
 *     workers --push(WindowResponse)--> [response queue] --tryRecv-->
 *
 * The envelopes are value types: everything a worker needs travels IN
 * the request (the merged schedule, the per-slot executorSeeds it
 * rebuilds draw streams from, the device model executors are built
 * for), and everything the scheduler needs travels back in the
 * response (per-slot ExecutionResults, or a serialized error). A real
 * network transport would serialize exactly these fields; the
 * in-process implementation (core/worker.h) stands in for the wire
 * with shared ownership: MergeSource's artifact pointers stay valid
 * because the request retains the owning sessions, which is the
 * in-proc analogue of the serialized payload owning its bytes.
 *
 * Lease protocol: the scheduler dispatches each window under a lease
 * (id, deadline, heartbeat interval) and supervises it — a worker
 * that stops heartbeating (died) or a lease that outlives its
 * deadline (stalled worker, lost response) is revoked and the window
 * re-dispatched; the transport only promises at-most-once delivery of
 * each response to tryRecv(), never execution. Duplicate executions
 * are harmless by construction: every draw comes from a per-request
 * Rng(executorSeed) stream, so any worker, any number of times,
 * produces bitwise-identical results (core/worker.h documents the
 * argument).
 *
 * Fault points: transport.send fires inside send() (the request never
 * reaches the fleet), transport.recv fires inside tryRecv() AFTER the
 * response left the queue (the response is lost in flight; the lease
 * deadline recovers the window). Both plug into JIGSAW_FAULT_SPEC.
 */
#ifndef JIGSAW_CORE_TRANSPORT_H
#define JIGSAW_CORE_TRANSPORT_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/session.h"
#include "device/device_model.h"

namespace jigsaw {
namespace core {

/**
 * Request envelope: one merged window dispatched to the worker tier
 * under one lease. sources arrive UNBOUND — executor and rng are
 * null — and the serving worker late-binds its own per-device
 * executor plus a fresh Rng(seeds[slot]) stream per enabled slot, so
 * the job's canonical draw stream on the scheduler side is never
 * consumed by remote attempts (what makes lost-lease re-dispatch and
 * local fallback replay the identical draws).
 */
struct WindowRequest
{
    std::uint64_t leaseId = 0;
    /** Heartbeat interval the lease was granted under: the worker
     *  fleet must beat at least this often to be considered alive. */
    double heartbeatMs = 0.0;
    /** The window's device (every source shares it); workers build
     *  their per-device executors from this model. */
    std::shared_ptr<const device::DeviceModel> device;
    /** The window's source slots, unbound (executor/rng null).
     *  Disabled slots are withdrawn jobs; workers skip them. */
    std::vector<MergeSource> sources;
    /** Per-slot executorSeed (parallel to sources; 0 on disabled
     *  slots): the worker's draw-stream seed for that job. */
    std::vector<std::uint64_t> seeds;
    /** The window's incrementally merged schedule, by value. */
    MergedSchedule merged;
    /**
     * In-process stand-in for payload ownership: the sessions whose
     * artifacts the MergeSource pointers reference. A revoked lease's
     * worker may still be reading them when the scheduler finishes
     * the jobs another way; retaining them here keeps that read valid
     * until the stale request itself is destroyed.
     */
    std::vector<std::shared_ptr<JigsawSession>> retain;
};

/**
 * Response envelope: one lease's outcome. Errors travel serialized
 * (message + transient flag) rather than as exception_ptr — exactly
 * what a wire format could carry — and the scheduler reconstructs the
 * taxonomy (TransientError vs terminal) on its side.
 */
struct WindowResponse
{
    std::uint64_t leaseId = 0;
    std::size_t worker = 0; ///< Index of the worker that served it.
    bool ok = false;
    bool transientError = false; ///< isTransient() of the failure.
    std::string errorMessage;    ///< Non-empty when !ok.
    /** Per-slot execution results (parallel to the request's sources;
     *  disabled slots default-constructed). Valid only when ok. */
    std::vector<ExecutionResult> results;
    MergedExecutionStats execStats;
    /** Wall milliseconds the worker spent executing the window —
     *  measured at the worker so the scheduler's "execute" trace
     *  spans (obs/trace.h) reflect remote work, not queueing. */
    double executeMs = 0.0;
};

/**
 * The execution-backend seam. Implementations own a worker fleet (or
 * a connection to one); the scheduler owns the lease bookkeeping and
 * never blocks on the transport — send() enqueues, tryRecv() polls,
 * and setResponseSignal() installs the doorbell that wakes the
 * scheduler's dispatcher when a response lands.
 *
 * Thread-safety: all methods may be called concurrently; the signal
 * callback may fire from any worker thread.
 */
class Transport
{
  public:
    virtual ~Transport() = default;

    /**
     * Enqueue @p request toward the fleet (the scheduler->worker
     * edge). Throws when the request cannot be delivered (including
     * an injected transport.send fault); the caller treats any throw
     * as a lost lease.
     */
    virtual void send(WindowRequest request) = 0;

    /**
     * Pop one completed response (the worker->scheduler edge), or
     * std::nullopt when the queue is empty. May throw AFTER removing
     * a response from the queue (an injected transport.recv fault):
     * that response is lost in flight, and the scheduler's lease
     * deadline recovers the window.
     */
    virtual std::optional<WindowResponse> tryRecv() = 0;

    /** Install (or clear, with nullptr) the callback invoked whenever
     *  a response becomes available. */
    virtual void setResponseSignal(std::function<void()> signal) = 0;

    /** Fleet size, dead workers included. */
    virtual std::size_t workerCount() const = 0;

    /** Workers currently alive (heartbeating). */
    virtual std::size_t liveWorkers() const = 0;

    /**
     * Milliseconds since the worker holding @p lease_id last
     * heartbeat, or std::nullopt while no worker holds it (still
     * queued, already completed, or revoked). The scheduler's lease
     * supervision compares this against heartbeatTimeoutMs to detect
     * worker death.
     */
    virtual std::optional<double>
    msSinceHeartbeat(std::uint64_t lease_id) const = 0;

    /**
     * Revoke @p lease_id: drop its request if still queued and forget
     * its worker assignment. A worker already executing it is NOT
     * interrupted (an in-process thread cannot be safely killed, and
     * a remote worker may be unreachable); its late response is
     * delivered normally and the scheduler discards it as stale.
     */
    virtual void revoke(std::uint64_t lease_id) = 0;
};

/** Reconstruct a failed response's error as the exception the
 *  scheduler's retry taxonomy understands (TransientError when the
 *  response says transient, std::runtime_error otherwise). */
std::exception_ptr responseError(const WindowResponse &response);

/** Envelope invariants every implementation may assume: device set,
 *  seeds parallel to sources, enabled sources unbound but complete.
 *  Panics (internal error) on violation — the scheduler builds
 *  requests, so a bad envelope is a bug, not user input. */
void validateRequest(const WindowRequest &request);

} // namespace core
} // namespace jigsaw

#endif // JIGSAW_CORE_TRANSPORT_H
