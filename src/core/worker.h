/**
 * @file
 * WorkerPool + InProcTransport: the in-process worker fleet behind
 * the Transport seam (core/transport.h).
 *
 * Each worker is one dedicated thread simulating a remote worker
 * process: it pulls WindowRequests off a shared queue, late-binds the
 * envelope's unbound sources — its OWN per-device executor (built
 * from the request's device model, cached per worker so recurring
 * circuits keep warm evolution caches, like the scheduler's shared
 * executors) and a fresh Rng(seeds[slot]) draw stream per enabled
 * slot — then runs the regular executeMergedSchedules path and pushes
 * the per-slot results back as a WindowResponse.
 *
 * Bitwise determinism across the fleet: every cached executor entry
 * is a deterministic function of (circuit, device) and every random
 * draw comes from the request's per-slot Rng(executorSeed) streams,
 * so WHICH worker serves a window — or how many times it executes
 * after lost-lease re-dispatch — never changes a job's result. That
 * is the property that lets the worker tier run in CI under the same
 * bitwise-vs-sequential tests as local execution (tests/
 * test_worker.cpp).
 *
 * Failure model (simulated worker-process death, driven by the
 * JIGSAW_FAULT_SPEC behavioral sites):
 *
 *  - worker.crash: the worker thread exits at request pickup without
 *    responding and its heartbeat stops — the scheduler's lease
 *    supervision sees the missed heartbeats and revokes. The worker
 *    never returns to the fleet (liveWorkers() drops).
 *  - worker.stall@ms: the worker sleeps ms before executing but keeps
 *    heartbeating — only the lease deadline catches it. Its late
 *    response is delivered normally and discarded as stale; the
 *    worker itself returns to the fleet healthy.
 *
 * Heartbeats are emitted by one pool-owned heartbeater thread on
 * behalf of every live worker (the analogue of a worker daemon's
 * process-level heartbeat, which beats while the process lives even
 * when its execution thread is busy) at WorkerOptions::heartbeatMs.
 */
#ifndef JIGSAW_CORE_WORKER_H
#define JIGSAW_CORE_WORKER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/service.h"
#include "core/transport.h"

namespace jigsaw {
namespace sim {
class Executor;
}
namespace core {

/** The fleet: N worker threads over shared request/response queues,
 *  plus the heartbeater. See the file comment for the model. */
class WorkerPool
{
  public:
    explicit WorkerPool(WorkerOptions options);

    /** Joins every thread; queued requests are dropped (their
     *  retained sessions die with them). */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    void submit(WindowRequest request);
    std::optional<WindowResponse> tryPop();
    void setResponseSignal(std::function<void()> signal);
    std::size_t workerCount() const;
    std::size_t liveWorkers() const;
    std::optional<double> msSinceHeartbeat(std::uint64_t lease_id) const;
    void revoke(std::uint64_t lease_id);

  private:
    /** Per-worker state. Heartbeat/liveness are atomics (heartbeater
     *  and supervision poke them lock-free); the executor cache is
     *  touched only by the owning worker thread. */
    struct WorkerState
    {
        std::atomic<std::int64_t> lastBeatNs{0};
        std::atomic<bool> alive{true};
        /** This worker's per-device executors, keyed like the
         *  scheduler's sharedExecutors_ (DeviceModel::fingerprint). */
        std::unordered_map<std::uint64_t,
                           std::shared_ptr<sim::Executor>>
            executors;
    };

    void workerLoop(std::size_t index);
    void heartbeatLoop();
    WindowResponse execute(WindowRequest &request, std::size_t index);

    const WorkerOptions options_;

    mutable std::mutex mutex_;
    /** Wakes workers (new request / stop). The heartbeater sleeps on
     *  its own cv so submit's notify_one can never be swallowed by a
     *  thread that ignores the inbox. */
    std::condition_variable cv_;
    std::condition_variable heartbeatCv_; ///< Stop signal only.
    bool stop_ = false;
    std::deque<WindowRequest> inbox_;
    std::deque<WindowResponse> outbox_;
    /** Which worker holds which lease (erased on completion/revoke). */
    std::unordered_map<std::uint64_t, std::size_t> leaseWorker_;
    std::function<void()> signal_;

    std::vector<std::unique_ptr<WorkerState>> workers_;
    std::vector<std::thread> threads_;
    std::thread heartbeater_;
};

/** The Transport the scheduler builds when WorkerOptions::workers > 0:
 *  a WorkerPool behind the seam, with the transport.send /
 *  transport.recv fault points on the two edges. */
class InProcTransport final : public Transport
{
  public:
    explicit InProcTransport(WorkerOptions options);

    void send(WindowRequest request) override;
    std::optional<WindowResponse> tryRecv() override;
    void setResponseSignal(std::function<void()> signal) override;
    std::size_t workerCount() const override;
    std::size_t liveWorkers() const override;
    std::optional<double>
    msSinceHeartbeat(std::uint64_t lease_id) const override;
    void revoke(std::uint64_t lease_id) override;

  private:
    WorkerPool pool_;
};

} // namespace core
} // namespace jigsaw

#endif // JIGSAW_CORE_WORKER_H
