#include "core/scheduler.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/error.h"

namespace jigsaw {
namespace core {

namespace {

/** Milliseconds from @p a to @p b (0 when either is unset). */
double
msBetweenImpl(std::chrono::steady_clock::time_point a,
              std::chrono::steady_clock::time_point b)
{
    if (a.time_since_epoch().count() == 0 ||
        b.time_since_epoch().count() == 0)
        return 0.0;
    return std::chrono::duration<double, std::milli>(b - a).count();
}

/** Key under which compatible jobs share a merge window. */
std::uint64_t
windowKeyFor(MergePolicy policy, std::uint64_t device_key,
             const circuit::QuantumCircuit &circuit)
{
    if (policy == MergePolicy::Always)
        return device_key; // mergeSchedules separates prefixes inside
    return device_key ^
           (circuit.structuralHash() * 0x9e3779b97f4a7c15ULL);
}

/** Priority class after @p waited_ms of aging (0 = strongest). */
std::size_t
effectiveClass(Priority cls, double waited_ms, double aging_ms)
{
    std::size_t c = static_cast<std::size_t>(cls);
    if (aging_ms > 0.0) {
        const std::size_t promoted =
            static_cast<std::size_t>(waited_ms / aging_ms);
        c = promoted >= c ? 0 : c - promoted;
    }
    return c;
}

} // namespace

StreamingScheduler::StreamingScheduler(StreamOptions options)
    : options_(options)
{
    dispatcher_ = std::thread([this] { dispatcherLoop(); });
}

StreamingScheduler::~StreamingScheduler()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        // Stopping closes every open window immediately; the
        // dispatcher exits only once all submitted work is terminal.
        const auto now = Clock::now();
        for (auto &[id, window] : windows_) {
            if (!window->closed)
                window->deadline = now;
        }
    }
    dispatcherCv_.notify_all();
    dispatcher_.join();
    group_.wait(); // completion callbacks all ran; nothing in flight
}

JobHandle
StreamingScheduler::submit(ServiceProgram program, Priority priority)
{
    std::unique_lock<std::mutex> lock(mutex_);
    fatalIf(stopping_, "StreamingScheduler: submit after shutdown");
    const std::uint64_t id = nextJobId_++;
    auto job = std::make_unique<Job>(id, priority, std::move(program));
    job->submitAt = Clock::now();
    job->mergeEligible = options_.mergePolicy != MergePolicy::Never &&
                         job->program.executor == nullptr;
    if (job->mergeEligible) {
        job->deviceKey = job->program.device.fingerprint();
        job->windowKey = windowKeyFor(options_.mergePolicy,
                                      job->deviceKey,
                                      job->program.circuit);
    }
    jobs_.emplace(id, std::move(job));
    admission_.push_back(id);
    ++liveJobs_;
    ++stats_.submitted;
    lock.unlock();
    dispatcherCv_.notify_all();
    return JobHandle{id};
}

std::optional<JobStatus>
StreamingScheduler::poll(JobHandle handle) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(handle.id);
    if (it == jobs_.end())
        return std::nullopt;
    const Job &job = *it->second;
    JobStatus status;
    status.state = job.state;
    status.priority = job.priority;
    const auto now = Clock::now();
    switch (job.state) {
      case JobState::Queued:
      case JobState::Preparing:
      case JobState::Windowed:
        status.queueWaitMs = msBetweenImpl(job.submitAt, now);
        break;
      case JobState::Dispatched:
        status.queueWaitMs = msBetweenImpl(job.submitAt, job.dispatchAt);
        status.executeMs = msBetweenImpl(job.dispatchAt, now);
        break;
      default: // terminal
        status.queueWaitMs = msBetweenImpl(
            job.submitAt, job.dispatchAt.time_since_epoch().count()
                              ? job.dispatchAt
                              : job.doneAt);
        status.executeMs = msBetweenImpl(job.dispatchAt, job.doneAt);
        status.totalMs = msBetweenImpl(job.submitAt, job.doneAt);
        break;
    }
    return status;
}

JigsawResult
StreamingScheduler::wait(JobHandle handle)
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        const auto it = jobs_.find(handle.id);
        fatalIf(it == jobs_.end(),
                "StreamingScheduler: wait on unknown job handle");
        Job &job = *it->second;
        if (job.state == JobState::Done)
            return *job.result;
        if (job.state == JobState::Failed)
            std::rethrow_exception(job.error);
        if (job.state == JobState::Cancelled)
            throw std::runtime_error(
                "StreamingScheduler: job was cancelled");
        // Help the pool along (mandatory with zero workers), then
        // sleep briefly; finishJob broadcasts jobCv_ on every
        // terminal transition.
        lock.unlock();
        const bool ran = detail::sharedPool().tryRunOneTask();
        lock.lock();
        if (!ran) {
            jobCv_.wait_for(lock, std::chrono::milliseconds(2));
        }
    }
}

bool
StreamingScheduler::cancel(JobHandle handle)
{
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = jobs_.find(handle.id);
    if (it == jobs_.end())
        return false;
    Job &job = *it->second;
    switch (job.state) {
      case JobState::Queued: {
        std::erase(admission_, job.id);
        finishJob(job, JobState::Cancelled, nullptr);
        releaseJobState(job); // nothing started; trivially safe
        break;
      }
      case JobState::Preparing: {
        // The stage task is still running; onPrepared sees the
        // terminal state, discards its outcome, and releases the
        // session (which the task may still be touching right now).
        finishJob(job, JobState::Cancelled, nullptr);
        break;
      }
      case JobState::Windowed: {
        if (job.windowSlot == kNoSlot) {
            // A prepared solo job awaiting its dispatch slot (it
            // never joins a window): pull it off the dispatch queue.
            std::erase_if(readyQueue_, [&](const ReadyEntry &entry) {
                return !entry.isWindow && entry.id == job.id;
            });
            finishJob(job, JobState::Cancelled, nullptr);
            releaseJobState(job);
            break;
        }
        // Unwind the job from its (open or closed-but-undispatched)
        // window: members out of the incremental merged schedule,
        // slot disabled so the executor pass skips it.
        const auto wit = windows_.find(job.windowId);
        panicIf(wit == windows_.end(),
                "cancel: windowed job without window");
        Window &window = *wit->second;
        panicIf(window.dispatched,
                "cancel: windowed job in dispatched window");
        removeSourceFrom(window.merged, job.windowSlot);
        window.sources[job.windowSlot].enabled = false;
        window.slotJob[job.windowSlot] = 0;
        std::erase(window.jobIds, job.id);
        finishJob(job, JobState::Cancelled, nullptr);
        // The disabled slot's MergeSource now dangles into this
        // job's released session/stream, but executeMergedSchedules
        // never dereferences a disabled source (and removeSourceFrom
        // left it no members), so the release is safe.
        releaseJobState(job);
        if (window.jobIds.empty()) {
            std::erase_if(readyQueue_, [&](const ReadyEntry &entry) {
                return entry.isWindow && entry.id == window.id;
            });
            windows_.erase(wit);
        }
        break;
      }
      default:
        return false; // dispatched or already terminal
    }
    lock.unlock();
    dispatcherCv_.notify_all();
    return true;
}

void
StreamingScheduler::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (liveJobs_ > 0) {
        // Close open windows now instead of waiting out windowMs —
        // re-checked every pass, because a job that was still queued
        // or preparing when drain() began opens its window later.
        const auto now = Clock::now();
        bool closed_any = false;
        for (auto &[id, window] : windows_) {
            if (!window->closed && window->deadline > now) {
                window->deadline = now;
                closed_any = true;
            }
        }
        lock.unlock();
        if (closed_any)
            dispatcherCv_.notify_all();
        const bool ran = detail::sharedPool().tryRunOneTask();
        lock.lock();
        if (!ran)
            jobCv_.wait_for(lock, std::chrono::milliseconds(2));
    }
}

StreamStats
StreamingScheduler::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t
StreamingScheduler::inFlightCap() const
{
    return options_.maxInFlight > 0 ? options_.maxInFlight
                                    : parallelThreads();
}

void
StreamingScheduler::startPrepare(Job &job)
{
    job.state = JobState::Preparing;
    if (job.mergeEligible) {
        std::shared_ptr<sim::Executor> &shared =
            sharedExecutors_[job.deviceKey];
        if (!shared) {
            // The shared executor's own seed never matters: every
            // merged draw comes from the job's private stream.
            shared = std::make_shared<sim::NoisySimulator>(
                job.program.device,
                sim::NoisySimulatorOptions{
                    .seed = job.program.executorSeed});
        }
        job.executor = shared;
        job.stream = std::make_unique<Rng>(job.program.executorSeed);
    } else if (job.program.executor) {
        job.executor = job.program.executor;
    } else {
        job.executor = std::make_shared<sim::NoisySimulator>(
            job.program.device,
            sim::NoisySimulatorOptions{.seed = job.program.executorSeed});
    }
    job.session = std::make_unique<JigsawSession>(
        job.program.circuit, job.program.device, *job.executor,
        job.program.trials, job.program.options);
    ++preparing_;
    JigsawSession *session = job.session.get();
    const std::uint64_t id = job.id;
    group_.run([session] { session->schedule(); },
               [this, id](std::exception_ptr error) {
                   onPrepared(id, error);
               });
}

void
StreamingScheduler::onPrepared(std::uint64_t job_id,
                               std::exception_ptr error)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        --preparing_;
        Job &job = *jobs_.at(job_id);
        if (job.state == JobState::Cancelled) {
            // Cancelled mid-prepare; the stage outcome is discarded,
            // and with the stage task over the session can go too.
            releaseJobState(job);
        } else if (error) {
            finishJob(job, JobState::Failed, error);
            releaseJobState(job);
        } else if (job.mergeEligible) {
            scheduleReady_.push_back(job_id);
        } else {
            job.state = JobState::Windowed; // dispatchable, no window
            readyQueue_.push_back(
                {false, job_id, job.priority, Clock::now()});
        }
    }
    dispatcherCv_.notify_all();
    jobCv_.notify_all();
}

void
StreamingScheduler::joinWindow(Job &job, Clock::time_point now)
{
    Window *window = nullptr;
    for (auto &[id, candidate] : windows_) {
        if (!candidate->closed && candidate->key == job.windowKey &&
            candidate->jobIds.size() < options_.windowMaxJobs) {
            window = candidate.get();
            break;
        }
    }
    if (window == nullptr) {
        auto fresh = std::make_unique<Window>();
        fresh->id = nextWindowId_++;
        fresh->key = job.windowKey;
        fresh->openedAt = now;
        fresh->deadline =
            now + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          std::max(options_.windowMs, 0.0)));
        window = fresh.get();
        windows_.emplace(fresh->id, std::move(fresh));
    }
    const std::size_t slot = window->sources.size();
    window->sources.push_back({slot, &job.session->compiled(),
                               &job.session->schedule(),
                               &job.session->plan(), job.deviceKey,
                               job.executor.get(), job.stream.get(),
                               true});
    mergeSourceInto(window->merged, window->sources, slot);
    window->slotJob.push_back(job.id);
    window->jobIds.push_back(job.id);
    window->bestClass = std::min(window->bestClass, job.priority);
    job.state = JobState::Windowed;
    job.windowId = window->id;
    job.windowSlot = slot;
    // High-priority jobs never trade latency for merging: their
    // window closes on the spot (with whatever has joined so far).
    if (job.priority == Priority::High || stopping_)
        window->deadline = now;
    if (window->jobIds.size() >= options_.windowMaxJobs ||
        window->deadline <= now)
        closeWindow(*window, now);
}

void
StreamingScheduler::closeWindow(Window &window, Clock::time_point now)
{
    if (window.closed)
        return;
    window.closed = true;
    readyQueue_.push_back({true, window.id, window.bestClass, now});
}

bool
StreamingScheduler::dispatchNext(Clock::time_point now)
{
    if (readyQueue_.empty() || inFlight_ >= inFlightCap())
        return false;
    // Best candidate: strongest aged class, then longest waiting.
    std::size_t best = 0;
    std::size_t best_class = kPriorityClasses;
    for (std::size_t i = 0; i < readyQueue_.size(); ++i) {
        const ReadyEntry &entry = readyQueue_[i];
        const std::size_t cls = effectiveClass(
            entry.cls, msBetweenImpl(entry.readySince, now),
            options_.agingMs);
        if (cls < best_class ||
            (cls == best_class &&
             entry.readySince < readyQueue_[best].readySince)) {
            best = i;
            best_class = cls;
        }
    }
    const ReadyEntry entry = readyQueue_[best];
    readyQueue_.erase(readyQueue_.begin() +
                      static_cast<std::ptrdiff_t>(best));
    if (entry.isWindow) {
        const auto it = windows_.find(entry.id);
        panicIf(it == windows_.end(), "dispatch: window vanished");
        dispatchWindow(*it->second, now);
    } else {
        dispatchSolo(*jobs_.at(entry.id), now);
    }
    return true;
}

void
StreamingScheduler::dispatchSolo(Job &job, Clock::time_point now)
{
    job.state = JobState::Dispatched;
    job.dispatchAt = now;
    ++inFlight_;
    ++stats_.loneDispatches;
    JigsawSession *session = job.session.get();
    std::shared_ptr<JigsawResult> *result_slot = &job.result;
    const std::uint64_t id = job.id;
    group_.run(
        [session, result_slot] {
            *result_slot =
                std::make_shared<JigsawResult>(session->run());
        },
        [this, id](std::exception_ptr error) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                Job &done = *jobs_.at(id);
                --inFlight_;
                finishJob(done,
                          error ? JobState::Failed : JobState::Done,
                          error);
                releaseJobState(done);
            }
            dispatcherCv_.notify_all();
            jobCv_.notify_all();
        });
}

void
StreamingScheduler::dispatchWindow(Window &window, Clock::time_point now)
{
    panicIf(window.jobIds.empty(), "dispatch: empty window");
    window.dispatched = true;
    window.remaining = window.jobIds.size();
    ++inFlight_;
    if (window.jobIds.size() >= 2) {
        ++stats_.mergedWindows;
        stats_.mergedJobs += window.jobIds.size();
    } else {
        ++stats_.loneDispatches;
    }
    for (const std::uint64_t id : window.jobIds) {
        Job &job = *jobs_.at(id);
        job.state = JobState::Dispatched;
        job.dispatchAt = now;
    }
    const std::uint64_t window_id = window.id;
    group_.run([this, window_id] { runWindowTask(window_id); },
               [this, window_id](std::exception_ptr error) {
                   // runWindowTask handles its own errors; anything
                   // reaching here is a scheduler bug surfaced as a
                   // window-wide failure.
                   if (!error)
                       return;
                   std::vector<std::uint64_t> members;
                   {
                       std::lock_guard<std::mutex> lock(mutex_);
                       const auto it = windows_.find(window_id);
                       if (it == windows_.end())
                           return;
                       members = it->second->jobIds;
                       for (const std::uint64_t id : members) {
                           Job &job = *jobs_.at(id);
                           if (job.state == JobState::Dispatched)
                               finishJob(job, JobState::Failed, error);
                       }
                       windows_.erase(it);
                       --inFlight_;
                   }
                   dispatcherCv_.notify_all();
                   jobCv_.notify_all();
               });
}

void
StreamingScheduler::runWindowTask(std::uint64_t window_id)
{
    Window *window = nullptr;
    std::vector<std::pair<std::uint64_t, std::size_t>> live;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        window = windows_.at(window_id).get();
        for (std::size_t slot = 0; slot < window->slotJob.size();
             ++slot) {
            if (window->slotJob[slot] != 0)
                live.push_back({window->slotJob[slot], slot});
        }
    }
    // The window is immutable once dispatched (cancel refuses), so
    // sources/merged are safe to read without the lock.
    MergedExecutionStats exec_stats;
    std::exception_ptr error;
    std::shared_ptr<std::vector<ExecutionResult>> executions;
    try {
        executions = std::make_shared<std::vector<ExecutionResult>>(
            executeMergedSchedules(window->sources, window->merged,
                                   &exec_stats));
    } catch (...) {
        error = std::current_exception();
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.crossProgramGroups += window->merged.crossProgramGroups();
        stats_.pooledGlobalBatches += exec_stats.pooledGlobalBatches;
        stats_.pooledGlobalPrograms += exec_stats.pooledGlobalPrograms;
        if (error) {
            for (const auto &[id, slot] : live) {
                Job &job = *jobs_.at(id);
                finishJob(job, JobState::Failed, error);
                releaseJobState(job); // no member task was spawned
            }
            windows_.erase(window_id);
            --inFlight_;
        }
    }
    if (error) {
        dispatcherCv_.notify_all();
        jobCv_.notify_all();
        return;
    }
    // Per-job resume: adopt the split-back execution slice and
    // reconstruct, one pool task per job so reconstructions overlap.
    for (const auto &[id, slot] : live) {
        JigsawSession *session;
        std::shared_ptr<JigsawResult> *result_slot;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            Job &job = *jobs_.at(id);
            session = job.session.get();
            result_slot = &job.result;
        }
        group_.run(
            [session, result_slot, executions, slot = slot] {
                session->adoptExecution(
                    std::move((*executions)[slot]));
                *result_slot =
                    std::make_shared<JigsawResult>(session->run());
            },
            [this, id = id, window_id](std::exception_ptr job_error) {
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    Job &job = *jobs_.at(id);
                    finishJob(job,
                              job_error ? JobState::Failed
                                        : JobState::Done,
                              job_error);
                    releaseJobState(job);
                    Window &done_window = *windows_.at(window_id);
                    if (--done_window.remaining == 0) {
                        windows_.erase(window_id);
                        --inFlight_;
                    }
                }
                dispatcherCv_.notify_all();
                jobCv_.notify_all();
            });
    }
}

void
StreamingScheduler::releaseJobState(Job &job)
{
    // A terminal job keeps its result, error, and timestamps for
    // poll()/wait(), but the heavyweight pipeline state — session
    // artifacts, draw stream, executor reference — is dead weight for
    // a long-running service, so each finish site drops it as soon as
    // no pool task can still touch the session. (Cancel-mid-prepare
    // defers to onPrepared; the defensive window-task-failure
    // callback skips the release because member tasks may be live.)
    job.session.reset();
    job.stream.reset();
    job.executor.reset();
}

void
StreamingScheduler::finishJob(Job &job, JobState state,
                              std::exception_ptr error)
{
    job.state = state;
    job.doneAt = Clock::now();
    job.error = error;
    --liveJobs_;
    switch (state) {
      case JobState::Done:
        ++stats_.completed;
        break;
      case JobState::Failed:
        ++stats_.failed;
        break;
      case JobState::Cancelled:
        ++stats_.cancelled;
        return; // no latency sample: the job never ran
      default:
        panicIf(true, "finishJob: non-terminal state");
    }
    StreamStats::JobSample sample;
    sample.priority = job.priority;
    sample.queueWaitMs = msBetweenImpl(
        job.submitAt, job.dispatchAt.time_since_epoch().count()
                          ? job.dispatchAt
                          : job.doneAt);
    sample.executeMs = msBetweenImpl(job.dispatchAt, job.doneAt);
    sample.totalMs = msBetweenImpl(job.submitAt, job.doneAt);
    stats_.jobs.push_back(sample);
    jobCv_.notify_all();
}

void
StreamingScheduler::dispatcherLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        const auto now = Clock::now();

        // Admit queued jobs into their prepare stage, strongest aged
        // class first (matters when submissions outrun the pool).
        while (!admission_.empty()) {
            std::size_t best = 0;
            std::size_t best_class = kPriorityClasses;
            for (std::size_t i = 0; i < admission_.size(); ++i) {
                const Job &job = *jobs_.at(admission_[i]);
                const std::size_t cls = effectiveClass(
                    job.priority, msBetweenImpl(job.submitAt, now),
                    options_.agingMs);
                if (cls < best_class) {
                    best = i;
                    best_class = cls;
                }
            }
            Job &job = *jobs_.at(admission_[best]);
            admission_.erase(admission_.begin() +
                             static_cast<std::ptrdiff_t>(best));
            startPrepare(job);
        }

        // Window the jobs whose pipeline stages completed.
        if (!scheduleReady_.empty()) {
            const std::vector<std::uint64_t> ready =
                std::move(scheduleReady_);
            scheduleReady_.clear();
            for (const std::uint64_t id : ready) {
                Job &job = *jobs_.at(id);
                if (job.state == JobState::Cancelled)
                    continue;
                joinWindow(job, now);
            }
        }

        // Close expired windows.
        for (auto &[id, window] : windows_) {
            if (!window->closed && window->deadline <= now)
                closeWindow(*window, now);
        }

        // Dispatch while slots are free.
        while (dispatchNext(now)) {
        }

        if (stopping_ && liveJobs_ == 0)
            return;

        // On a worker-less pool nothing else drains the task queue
        // when callers only poll(); the dispatcher pitches in.
        if (detail::sharedPool().workerCount() == 0 &&
            (inFlight_ > 0 || preparing_ > 0)) {
            lock.unlock();
            const bool ran = detail::sharedPool().tryRunOneTask();
            lock.lock();
            if (ran)
                continue;
        }

        // Sleep until the next window deadline (or a notification).
        std::optional<Clock::time_point> next;
        for (const auto &[id, window] : windows_) {
            if (!window->closed &&
                (!next || window->deadline < *next))
                next = window->deadline;
        }
        if (!admission_.empty() || !scheduleReady_.empty())
            continue; // new work arrived while dispatching
        if (detail::sharedPool().workerCount() == 0 &&
            (inFlight_ > 0 || preparing_ > 0)) {
            dispatcherCv_.wait_for(lock, std::chrono::milliseconds(1));
        } else if (next) {
            dispatcherCv_.wait_until(lock, *next);
        } else {
            dispatcherCv_.wait(lock);
        }
    }
}

} // namespace core
} // namespace jigsaw
