#include "core/scheduler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/error.h"
#include "common/log.h"
#include "common/simd.h"
#include "compiler/transpiler.h"
#include "core/worker.h"
#include "obs/exposition.h"
#include "obs/http.h"
#include "obs/trace.h"
#include "sim/simulators.h"

namespace jigsaw {
namespace core {

namespace {

/** The scheduler's named logger (interned once; see common/log.h). */
log::Logger &
schedulerLog()
{
    static log::Logger &instance = log::logger("core.scheduler");
    return instance;
}

/** Registry label values per Priority class, by class index. */
constexpr const char *kClassNames[kPriorityClasses] = {"high", "normal",
                                                       "low"};

/** Milliseconds from @p a to @p b (0 when either is unset). */
double
msBetweenImpl(std::chrono::steady_clock::time_point a,
              std::chrono::steady_clock::time_point b)
{
    if (a.time_since_epoch().count() == 0 ||
        b.time_since_epoch().count() == 0)
        return 0.0;
    return std::chrono::duration<double, std::milli>(b - a).count();
}

/** @p ms as a steady_clock duration (non-negative). */
std::chrono::steady_clock::duration
msDuration(double ms)
{
    return std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double, std::milli>(std::max(ms, 0.0)));
}

/** True when @p point has been assigned (deadlines, retry targets). */
bool
isSet(std::chrono::steady_clock::time_point point)
{
    return point.time_since_epoch().count() != 0;
}

/**
 * Key under which compatible jobs share a merge window. Keyed on the
 * parameter-invariant skeletonHash so parametric iterations of one
 * program — same gates, fresh angles — window together: their compiled
 * prefixes differ only in diagonal-rotation angles, which the merged
 * executor deduplicates via its skeleton split-prefix cache.
 */
std::uint64_t
windowKeyFor(MergePolicy policy, std::uint64_t device_key,
             const circuit::QuantumCircuit &circuit)
{
    if (policy == MergePolicy::Always)
        return device_key; // mergeSchedules separates prefixes inside
    return device_key ^
           (circuit.skeletonHash() * 0x9e3779b97f4a7c15ULL);
}

/** Priority class after @p waited_ms of aging (0 = strongest). */
std::size_t
effectiveClass(Priority cls, double waited_ms, double aging_ms)
{
    std::size_t c = static_cast<std::size_t>(cls);
    if (aging_ms > 0.0) {
        const std::size_t promoted =
            static_cast<std::size_t>(waited_ms / aging_ms);
        c = promoted >= c ? 0 : c - promoted;
    }
    return c;
}

std::exception_ptr
deadlineError()
{
    return std::make_exception_ptr(DeadlineExceededError(
        "StreamingScheduler: job missed its deadlineMs SLO"));
}

bool
isTerminal(JobState state)
{
    switch (state) {
      case JobState::Done:
      case JobState::Failed:
      case JobState::Cancelled:
      case JobState::Expired:
        return true;
      default:
        return false;
    }
}

} // namespace

StreamingScheduler::StreamingScheduler(StreamOptions options)
    : options_(options)
{
    registerMetrics();
    if (options_.metricsPort >= 0) {
        // The endpoint renders the process-wide registry, which runs
        // this scheduler's collector (and any sibling's) per scrape.
        metricsServer_ = std::make_unique<obs::MetricsHttpServer>(
            options_.metricsPort,
            [] { return obs::renderProcessMetrics(); });
    }
    // Worker tier: a caller-supplied transport wins (the test seam);
    // otherwise worker.workers > 0 builds the in-process fleet. Null
    // means every window runs on the local pool, as before.
    if (options_.transport != nullptr)
        transport_ = options_.transport;
    else if (options_.worker.workers > 0)
        transport_ = std::make_shared<InProcTransport>(options_.worker);
    if (transport_ != nullptr) {
        // The response doorbell: bare notify (no state change), so
        // firing from any worker thread without the lock is fine.
        transport_->setResponseSignal(
            [this] { dispatcherCv_.notify_all(); });
    }
    collectorId_ = obs::Registry::instance().addCollector([this] {
        std::lock_guard<std::mutex> lock(mutex_);
        publishMetricsLocked();
    });
    JIGSAW_LOG_DEBUG(schedulerLog(), "scheduler started",
                     log::kv("workers", options_.worker.workers),
                     log::kv("window_ms", options_.windowMs),
                     log::kv("metrics_port", metricsPort()));
    dispatcher_ = std::thread([this] { dispatcherLoop(); });
}

StreamingScheduler::~StreamingScheduler()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        // Stopping closes every open window immediately; the
        // dispatcher exits only once all submitted work is terminal
        // (pending retries run without backoff under stopping_).
        const auto now = Clock::now();
        for (auto &[id, window] : windows_) {
            if (!window->closed)
                window->deadline = now;
        }
    }
    dispatcherCv_.notify_all();
    dispatcher_.join();
    group_.wait(); // completion callbacks all ran; nothing in flight
    if (transport_ != nullptr) {
        // A stale worker (revoked lease, window finished elsewhere)
        // may still be executing: clear the doorbell so it cannot
        // fire into a dying scheduler, then drop the transport — the
        // in-process fleet's destructor joins its worker threads,
        // whose requests retain the sessions they read until then.
        transport_->setResponseSignal(nullptr);
        transport_.reset();
    }
    // Stop serving scrapes, block out any in-flight collector run,
    // then flush the remaining counter deltas so the process-wide
    // totals include this scheduler's last jobs.
    metricsServer_.reset();
    obs::Registry::instance().removeCollector(collectorId_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        publishMetricsLocked();
    }
}

int
StreamingScheduler::metricsPort() const
{
    return metricsServer_ != nullptr ? metricsServer_->port() : -1;
}

void
StreamingScheduler::registerMetrics()
{
    obs::registerProcessMetrics(); // transpile + SIMD families
    obs::Registry &reg = obs::Registry::instance();
    const auto bind = [&](const char *name, const char *help,
                          std::size_t StreamStats::*member,
                          obs::Labels labels = {}) {
        counterBindings_.emplace_back(
            &reg.counter(name, help, std::move(labels)), member);
    };
    bind("jigsaw_stream_submitted_total",
         "Streaming jobs admitted by submit().",
         &StreamStats::submitted);
    const char *outcomes_help =
        "Terminal streaming jobs by outcome.";
    bind("jigsaw_stream_jobs_total", outcomes_help,
         &StreamStats::completed, {{"outcome", "completed"}});
    bind("jigsaw_stream_jobs_total", outcomes_help,
         &StreamStats::failed, {{"outcome", "failed"}});
    bind("jigsaw_stream_jobs_total", outcomes_help,
         &StreamStats::cancelled, {{"outcome", "cancelled"}});
    bind("jigsaw_stream_jobs_total", outcomes_help,
         &StreamStats::expired, {{"outcome", "expired"}});
    bind("jigsaw_stream_shed_total",
         "Submits rejected by bounded admission.", &StreamStats::shed);
    bind("jigsaw_stream_retries_total",
         "Transient-failure pipeline restarts.", &StreamStats::retries);
    bind("jigsaw_stream_quarantined_jobs_total",
         "Jobs re-queued solo after a poisoned merged window.",
         &StreamStats::quarantinedJobs);
    const char *windows_help = "Dispatched execution units by kind.";
    bind("jigsaw_stream_windows_total", windows_help,
         &StreamStats::mergedWindows, {{"kind", "merged"}});
    bind("jigsaw_stream_windows_total", windows_help,
         &StreamStats::loneDispatches, {{"kind", "lone"}});
    bind("jigsaw_stream_merged_jobs_total",
         "Jobs that rode a merged window.", &StreamStats::mergedJobs);
    const char *resize_help =
        "Merge windows opened at an adapted width, by direction.";
    bind("jigsaw_window_resizes_total", resize_help,
         &StreamStats::windowShrinks, {{"direction", "shrink"}});
    bind("jigsaw_window_resizes_total", resize_help,
         &StreamStats::windowGrows, {{"direction", "grow"}});
    const char *lease_help = "Worker-tier lease lifecycle events.";
    bind("jigsaw_stream_lease_events_total", lease_help,
         &StreamStats::leasesGranted, {{"event", "granted"}});
    bind("jigsaw_stream_lease_events_total", lease_help,
         &StreamStats::leasesExpired, {{"event", "expired"}});
    bind("jigsaw_stream_lease_events_total", lease_help,
         &StreamStats::leasesRevoked, {{"event", "revoked"}});
    bind("jigsaw_stream_lease_events_total", lease_help,
         &StreamStats::redispatches, {{"event", "redispatched"}});
    bind("jigsaw_stream_lease_events_total", lease_help,
         &StreamStats::localFallbacks, {{"event", "local_fallback"}});
    bind("jigsaw_stream_lease_events_total", lease_help,
         &StreamStats::staleResponses, {{"event", "stale_response"}});
    bind("jigsaw_stream_results_evicted_total",
         "Delivered results evicted under resultRetention.",
         &StreamStats::evicted);
    const char *cache_help =
        "Shared-executor cache events (PMF and split-prefix state).";
    const auto bindCache = [&](const char *cache, const char *result,
                               std::uint64_t StreamStats::*member) {
        cacheBindings_.emplace_back(
            &reg.counter("jigsaw_executor_cache_events_total",
                         cache_help,
                         {{"cache", cache}, {"result", result}}),
            member);
    };
    bindCache("pmf", "hit", &StreamStats::executorPmfHits);
    bindCache("pmf", "miss", &StreamStats::executorPmfMisses);
    bindCache("prefix_state", "hit", &StreamStats::prefixStateHits);
    bindCache("prefix_state", "miss", &StreamStats::prefixStateMisses);
    for (std::size_t cls = 0; cls < kPriorityClasses; ++cls) {
        const obs::Labels labels{{"class", kClassNames[cls]}};
        latencyHist_[cls] = &reg.histogram(
            "jigsaw_stream_latency_ms",
            "Submit-to-terminal latency of completed/failed jobs.",
            obs::defaultLatencyBoundsMs(), labels);
        queueWaitHist_[cls] = &reg.histogram(
            "jigsaw_stream_queue_wait_ms",
            "Submit-to-dispatch wait of completed/failed jobs.",
            obs::defaultLatencyBoundsMs(), labels);
        executeHist_[cls] = &reg.histogram(
            "jigsaw_stream_execute_ms",
            "Dispatch-to-terminal time of completed/failed jobs.",
            obs::defaultLatencyBoundsMs(), labels);
    }
    backlogGauge_ =
        &reg.gauge("jigsaw_stream_backlog_jobs",
                   "Undispatched live jobs (admission backlog).");
    inFlightGauge_ =
        &reg.gauge("jigsaw_stream_inflight",
                   "Dispatched windows/solo jobs still running.");
    windowWidthGauge_ =
        &reg.gauge("jigsaw_window_width_ms",
                   "Effective merge-window width after overload "
                   "shrink and burst growth.");
    burstScoreGauge_ = &reg.gauge(
        "jigsaw_burst_score",
        "Drain EWMA over arrival EWMA; > 1 means jobs arrive faster "
        "than they drain.");
    windowWidthGauge_->set(std::max(options_.windowMs, 0.0));
}

void
StreamingScheduler::publishMetricsLocked()
{
    const StreamStats now = statsLocked();
    for (const auto &[counter, member] : counterBindings_) {
        if (now.*member > published_.*member)
            counter->add(now.*member - published_.*member);
    }
    for (const auto &[counter, member] : cacheBindings_) {
        if (now.*member > published_.*member)
            counter->add(now.*member - published_.*member);
    }
    published_ = now;
    backlogGauge_->set(static_cast<double>(backlog_));
    inFlightGauge_->set(static_cast<double>(inFlight_));
}

double
StreamingScheduler::retryHintMsLocked(std::size_t threshold) const
{
    // How long until the backlog should have drained below this
    // class's threshold: the excess jobs times the observed
    // per-completion interval. Before any completion exists (cold
    // scheduler) the window length is the only timescale at hand.
    const double per_job =
        drainEwmaMs_ > 0.0 ? drainEwmaMs_
                           : std::max(options_.windowMs, 1.0);
    const double excess =
        static_cast<double>(backlog_ - threshold + 1);
    return std::clamp(excess * per_job, 1.0, 60000.0);
}

SubmitResult
StreamingScheduler::submit(ServiceProgram program, Priority priority)
{
    std::unique_lock<std::mutex> lock(mutex_);
    fatalIf(stopping_, "StreamingScheduler: submit after shutdown");
    if (options_.maxQueuedJobs > 0) {
        const std::size_t cls = static_cast<std::size_t>(priority);
        const double fraction =
            std::clamp(options_.shedFractions[cls], 0.0, 1.0);
        const std::size_t threshold = static_cast<std::size_t>(
            std::ceil(fraction *
                      static_cast<double>(options_.maxQueuedJobs)));
        if (backlog_ >= threshold) {
            ++stats_.shed;
            ++stats_.shedByClass[cls];
            SubmitResult rejected;
            rejected.tryLaterAfterMs = retryHintMsLocked(threshold);
            JIGSAW_LOG_INFO(schedulerLog(), "submit shed",
                            log::kv("class", kClassNames[cls]),
                            log::kv("backlog", backlog_),
                            log::kv("threshold", threshold),
                            log::kv("retry_after_ms",
                                    rejected.tryLaterAfterMs));
            return rejected;
        }
    }
    const std::uint64_t id = nextJobId_++;
    auto job = std::make_unique<Job>(id, priority, std::move(program));
    job->submitAt = Clock::now();
    // Inter-arrival EWMA: the burst detector's numerator-side signal
    // (effectiveWindowMsLocked compares it against the drain EWMA).
    if (isSet(lastSubmitAt_)) {
        const double gap = msBetweenImpl(lastSubmitAt_, job->submitAt);
        arrivalEwmaMs_ = arrivalEwmaMs_ > 0.0
                             ? 0.8 * arrivalEwmaMs_ + 0.2 * gap
                             : gap;
    }
    lastSubmitAt_ = job->submitAt;
    job->mergeEligible = options_.mergePolicy != MergePolicy::Never &&
                         job->program.executor == nullptr;
    if (job->mergeEligible) {
        job->deviceKey = job->program.device.fingerprint();
        job->windowKey = windowKeyFor(options_.mergePolicy,
                                      job->deviceKey,
                                      job->program.circuit);
    }
    if (job->program.deadlineMs > 0.0) {
        job->deadlineAt =
            job->submitAt + msDuration(job->program.deadlineMs);
        deadlined_.push_back(id);
    }
    if (tenantDeficit_.emplace(job->program.tenant, 0.0).second)
        tenantRotation_.push_back(job->program.tenant);
    jobs_.emplace(id, std::move(job));
    admission_.push_back(id);
    ++liveJobs_;
    ++backlog_;
    ++stats_.submitted;
    lock.unlock();
    dispatcherCv_.notify_all();
    return SubmitResult{true, JobHandle{id}, 0.0};
}

ParametricHandle
StreamingScheduler::compileParametric(ServiceProgram prototype)
{
    fatalIf(prototype.circuit.parameterCount() == 0,
            "compileParametric: circuit carries no rotation "
            "parameters to re-bind");
    // Prewarm the process-wide transpile memo outside the scheduler
    // lock: the prototype's global + CPM compilations land in the
    // same skeleton-keyed entries every iteration will hit. (The
    // executor's evolution caches warm on the first execution — they
    // need bound angles for the diagonal tail.)
    const SubsetPlan plan = planSubsets(
        prototype.circuit, prototype.trials, prototype.options);
    compileJobs(prototype.circuit, prototype.device, plan,
                prototype.options);
    std::lock_guard<std::mutex> lock(mutex_);
    fatalIf(stopping_,
            "StreamingScheduler: compileParametric after shutdown");
    const std::uint64_t id = nextParametricId_++;
    prototypes_.emplace(id, std::move(prototype));
    ++stats_.parametricPrograms;
    return ParametricHandle{id};
}

SubmitResult
StreamingScheduler::submitIteration(ParametricHandle handle,
                                    const std::vector<double> &angles,
                                    Priority priority)
{
    ServiceProgram program = [&] {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = prototypes_.find(handle.id);
        fatalIf(it == prototypes_.end(),
                "submitIteration: unknown parametric handle");
        ++stats_.parametricIterations;
        return it->second; // copy: the prototype stays pristine
    }();
    program.circuit.rebindAngles(angles);
    return submit(std::move(program), priority);
}

std::optional<JobStatus>
StreamingScheduler::poll(JobHandle handle) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(handle.id);
    if (it == jobs_.end())
        return std::nullopt;
    const Job &job = *it->second;
    JobStatus status;
    status.state = job.state;
    status.priority = job.priority;
    status.attempts = job.attempts;
    const auto now = Clock::now();
    switch (job.state) {
      case JobState::Queued:
      case JobState::Preparing:
      case JobState::Windowed:
        status.queueWaitMs = msBetweenImpl(job.submitAt, now);
        break;
      case JobState::Dispatched:
        status.queueWaitMs = msBetweenImpl(job.submitAt, job.dispatchAt);
        status.executeMs = msBetweenImpl(job.dispatchAt, now);
        break;
      default: // terminal
        status.queueWaitMs = msBetweenImpl(
            job.submitAt, job.dispatchAt.time_since_epoch().count()
                              ? job.dispatchAt
                              : job.doneAt);
        status.executeMs = msBetweenImpl(job.dispatchAt, job.doneAt);
        status.totalMs = msBetweenImpl(job.submitAt, job.doneAt);
        break;
    }
    return status;
}

void
StreamingScheduler::markDeliveredLocked(Job &job)
{
    if (job.delivered || options_.resultRetention == 0)
        return;
    job.delivered = true;
    retired_.push_back(job.id);
    while (retired_.size() > options_.resultRetention) {
        const std::uint64_t victim = retired_.front();
        retired_.pop_front();
        jobs_.erase(victim);
        ++stats_.evicted;
    }
}

JigsawResult
StreamingScheduler::wait(JobHandle handle)
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        const auto it = jobs_.find(handle.id);
        fatalIf(it == jobs_.end(),
                "StreamingScheduler: wait on unknown (or released) "
                "job handle");
        Job &job = *it->second;
        if (job.state == JobState::Done) {
            // Copy before retention bookkeeping: the eviction sweep
            // may erase this very job.
            JigsawResult result = *job.result;
            markDeliveredLocked(job);
            return result;
        }
        if (job.state == JobState::Failed ||
            job.state == JobState::Expired) {
            const std::exception_ptr error = job.error;
            markDeliveredLocked(job);
            std::rethrow_exception(error);
        }
        if (job.state == JobState::Cancelled) {
            markDeliveredLocked(job);
            throw std::runtime_error(
                "StreamingScheduler: job was cancelled");
        }
        // Help the pool along (mandatory with zero workers), then
        // sleep briefly; finishJob broadcasts jobCv_ on every
        // terminal transition.
        lock.unlock();
        const bool ran = detail::sharedPool().tryRunOneTask();
        lock.lock();
        if (!ran) {
            jobCv_.wait_for(lock, std::chrono::milliseconds(2));
        }
    }
}

bool
StreamingScheduler::withdrawLocked(Job &job, JobState terminal_state,
                                   std::exception_ptr error)
{
    switch (job.state) {
      case JobState::Queued: {
        std::erase(admission_, job.id);
        std::erase(retryQueue_, job.id);
        finishJob(job, terminal_state, error);
        releaseJobState(job); // nothing started; trivially safe
        return true;
      }
      case JobState::Preparing: {
        // The stage task is still running; onPrepared sees the
        // terminal state, discards its outcome, and releases the
        // session (which the task may still be touching right now).
        finishJob(job, terminal_state, error);
        return true;
      }
      case JobState::Windowed: {
        if (job.windowSlot == kNoSlot) {
            // A prepared solo job awaiting its dispatch slot (it
            // never joins a window): pull it off the dispatch queue.
            std::erase_if(readyQueue_, [&](const ReadyEntry &entry) {
                return !entry.isWindow && entry.id == job.id;
            });
            finishJob(job, terminal_state, error);
            releaseJobState(job);
            return true;
        }
        // Unwind the job from its (open or closed-but-undispatched)
        // window: members out of the incremental merged schedule,
        // slot disabled so the executor pass skips it.
        const auto wit = windows_.find(job.windowId);
        panicIf(wit == windows_.end(),
                "withdraw: windowed job without window");
        Window &window = *wit->second;
        panicIf(window.dispatched,
                "withdraw: windowed job in dispatched window");
        removeSourceFrom(window.merged, job.windowSlot);
        window.sources[job.windowSlot].enabled = false;
        window.slotJob[job.windowSlot] = 0;
        std::erase(window.jobIds, job.id);
        finishJob(job, terminal_state, error);
        // The disabled slot's MergeSource now dangles into this
        // job's released session/stream, but executeMergedSchedules
        // never dereferences a disabled source (and removeSourceFrom
        // left it no members), so the release is safe.
        releaseJobState(job);
        if (window.jobIds.empty()) {
            std::erase_if(readyQueue_, [&](const ReadyEntry &entry) {
                return entry.isWindow && entry.id == window.id;
            });
            windows_.erase(wit);
        }
        return true;
      }
      default:
        return false; // dispatched or already terminal
    }
}

bool
StreamingScheduler::cancel(JobHandle handle)
{
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = jobs_.find(handle.id);
    if (it == jobs_.end())
        return false;
    if (!withdrawLocked(*it->second, JobState::Cancelled, nullptr))
        return false;
    lock.unlock();
    dispatcherCv_.notify_all();
    return true;
}

bool
StreamingScheduler::release(JobHandle handle)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(handle.id);
    if (it == jobs_.end())
        return false;
    if (!isTerminal(it->second->state))
        return false;
    // A cancelled-mid-prepare job's stage task may still be running;
    // onPrepared finds jobs by id and skips missing ones, so erasing
    // here is safe.
    if (it->second->delivered)
        std::erase(retired_, handle.id);
    jobs_.erase(it);
    ++stats_.released;
    return true;
}

void
StreamingScheduler::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (liveJobs_ > 0) {
        // Close open windows now instead of waiting out windowMs —
        // re-checked every pass, because a job that was still queued
        // or preparing when drain() began opens its window later.
        const auto now = Clock::now();
        bool closed_any = false;
        for (auto &[id, window] : windows_) {
            if (!window->closed && window->deadline > now) {
                window->deadline = now;
                closed_any = true;
            }
        }
        lock.unlock();
        if (closed_any)
            dispatcherCv_.notify_all();
        const bool ran = detail::sharedPool().tryRunOneTask();
        lock.lock();
        if (!ran)
            jobCv_.wait_for(lock, std::chrono::milliseconds(2));
    }
}

StreamStats
StreamingScheduler::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return statsLocked();
}

StreamStats
StreamingScheduler::statsLocked() const
{
    StreamStats out = stats_;
    out.transpileHits = compiler::transpileCacheHits();
    out.transpileMisses = compiler::transpileCacheMisses();
    out.transpileRebinds = compiler::transpileSkeletonRebinds();
    // Process-wide like the transpile memo: a snapshot, not a
    // per-executor sum.
    const simd::DispatchCounters simd_now = simd::dispatchCounters();
    out.simdScalarCalls = simd_now.backendTotal(simd::kBackendScalar);
    out.simdAvx2Calls = simd_now.backendTotal(simd::kBackendAvx2);
    out.simdAvx512Calls = simd_now.backendTotal(simd::kBackendAvx512);
    for (const auto &[key, executor] : sharedExecutors_) {
        const sim::ExecutorCounters counters = executor->counters();
        out.executorPmfHits += counters.pmfHits;
        out.executorPmfMisses += counters.pmfMisses;
        out.prefixStateHits += counters.prefixStateHits;
        out.prefixStateMisses += counters.prefixStateMisses;
    }
    return out;
}

std::size_t
StreamingScheduler::inFlightCap() const
{
    return options_.maxInFlight > 0 ? options_.maxInFlight
                                    : parallelThreads();
}

double
StreamingScheduler::effectiveWindowMsLocked()
{
    // Two opposing adaptive signals compose here, per window opened:
    //
    //  - Overload degradation: when the backlog fills the admission
    //    budget, trading latency for merging stops making sense —
    //    shrink the window linearly from full (<= half capacity) to
    //    immediate dispatch (>= capacity). Restores by itself as the
    //    queue drains. Without an admission bound there is no
    //    overload signal — a deep backlog is then just a batch burst,
    //    where merging is the whole point — so no shrink applies.
    //  - Burst growth: while jobs arrive faster than they drain
    //    (burst score = drain EWMA / arrival EWMA > 1), wider windows
    //    merge best, so the window grows by the score up to
    //    StreamOptions::burstGrowMax. The default cap of 1 only
    //    counteracts the shrink — the window never exceeds its
    //    configured width unless the caller opts in.
    const double window_ms = std::max(options_.windowMs, 0.0);
    double burst_score = 0.0;
    if (arrivalEwmaMs_ > 0.0 && drainEwmaMs_ > 0.0)
        burst_score = drainEwmaMs_ / arrivalEwmaMs_;
    burstScoreGauge_->set(burst_score);
    if (window_ms == 0.0) {
        windowWidthGauge_->set(0.0);
        return 0.0;
    }
    double shrink = 1.0;
    const std::size_t capacity = options_.maxQueuedJobs;
    if (capacity > 0) {
        const double utilization = static_cast<double>(backlog_) /
                                   static_cast<double>(capacity);
        if (utilization > 0.5)
            shrink = std::clamp(2.0 * (1.0 - utilization), 0.0, 1.0);
    }
    const double grow_cap = std::max(options_.burstGrowMax, 1.0);
    const double grow = std::clamp(burst_score, 1.0, grow_cap);
    const double effective =
        window_ms * std::min(shrink * grow, grow_cap);
    if (effective < window_ms)
        ++stats_.windowShrinks;
    else if (effective > window_ms)
        ++stats_.windowGrows;
    windowWidthGauge_->set(effective);
    if (effective != window_ms) {
        JIGSAW_LOG_DEBUG(schedulerLog(), "window width adapted",
                         log::kv("width_ms", effective),
                         log::kv("configured_ms", window_ms),
                         log::kv("burst_score", burst_score),
                         log::kv("shrink", shrink));
    }
    return effective;
}

void
StreamingScheduler::startPrepare(Job &job)
{
    job.state = JobState::Preparing;
    if (job.mergeEligible) {
        std::shared_ptr<sim::Executor> &shared =
            sharedExecutors_[job.deviceKey];
        if (!shared) {
            // The shared executor's own seed never matters: every
            // merged draw comes from the job's private stream.
            shared = std::make_shared<sim::NoisySimulator>(
                job.program.device,
                sim::NoisySimulatorOptions{
                    .seed = job.program.executorSeed});
        }
        job.executor = shared;
        job.stream = std::make_unique<Rng>(job.program.executorSeed);
    } else if (job.program.executor) {
        job.executor = job.program.executor;
    } else {
        job.executor = std::make_shared<sim::NoisySimulator>(
            job.program.device,
            sim::NoisySimulatorOptions{.seed = job.program.executorSeed});
    }
    job.session = std::make_shared<JigsawSession>(
        job.program.circuit, job.program.device, *job.executor,
        job.program.trials, job.program.options);
    ++preparing_;
    JigsawSession *session = job.session.get();
    const std::uint64_t id = job.id;
    obs::TraceRecorder *trace = options_.trace.get();
    const std::uint32_t epoch = job.traceEpoch;
    group_.run(
        [session, trace, id, epoch] {
            if (trace != nullptr) {
                // Stepwise: the lazy stage accessors let the plan and
                // compile+schedule stages be timed separately.
                const double plan_start = trace->nowMs();
                session->plan();
                const double compile_start = trace->nowMs();
                trace->record(id, epoch, "plan", plan_start,
                              compile_start - plan_start, 0, 0);
                session->schedule();
                trace->record(id, epoch, "compile", compile_start,
                              trace->nowMs() - compile_start, 0, 0);
            } else {
                session->schedule();
            }
        },
        [this, id](std::exception_ptr error) { onPrepared(id, error); });
}

void
StreamingScheduler::onPrepared(std::uint64_t job_id,
                               std::exception_ptr error)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        --preparing_;
        const auto it = jobs_.find(job_id);
        if (it == jobs_.end()) {
            // Withdrawn and release()d while the stage task ran:
            // nothing left to touch.
        } else if (isTerminal(it->second->state)) {
            // Cancelled/expired mid-prepare; the stage outcome is
            // discarded, and with the stage task over the session can
            // go too.
            releaseJobState(*it->second);
        } else if (error) {
            handleJobFailure(*it->second, error, Clock::now(), false);
        } else if (it->second->mergeEligible) {
            scheduleReady_.push_back(job_id);
        } else {
            Job &job = *it->second;
            job.state = JobState::Windowed; // dispatchable, no window
            ReadyEntry entry;
            entry.id = job_id;
            entry.cls = job.priority;
            entry.readySince = Clock::now();
            entry.tenant = job.program.tenant;
            readyQueue_.push_back(std::move(entry));
        }
    }
    dispatcherCv_.notify_all();
    jobCv_.notify_all();
}

void
StreamingScheduler::joinWindow(Job &job, Clock::time_point now)
{
    Window *window = nullptr;
    if (!job.quarantined) {
        for (auto &[id, candidate] : windows_) {
            if (!candidate->closed && !candidate->exclusive &&
                candidate->key == job.windowKey &&
                candidate->jobIds.size() < options_.windowMaxJobs) {
                window = candidate.get();
                break;
            }
        }
    }
    if (window == nullptr) {
        auto fresh = std::make_unique<Window>();
        fresh->id = nextWindowId_++;
        fresh->key = job.windowKey;
        // A quarantined job must still ride the merged machinery (its
        // draws come from its private stream), but alone: an
        // exclusive window admits no partners for it to poison.
        fresh->exclusive = job.quarantined;
        fresh->openedAt = now;
        fresh->deadline = now + msDuration(effectiveWindowMsLocked());
        window = fresh.get();
        windows_.emplace(fresh->id, std::move(fresh));
        JIGSAW_LOG_TRACE(schedulerLog(), "window opened",
                         log::kv("window", window->id),
                         log::kv("key", window->key),
                         log::kv("exclusive", window->exclusive));
    }
    const std::size_t slot = window->sources.size();
    window->sources.push_back({slot, &job.session->compiled(),
                               &job.session->schedule(),
                               &job.session->plan(), job.deviceKey,
                               job.executor.get(), job.stream.get(),
                               true});
    mergeSourceInto(window->merged, window->sources, slot);
    window->slotJob.push_back(job.id);
    window->jobIds.push_back(job.id);
    window->bestClass = std::min(window->bestClass, job.priority);
    job.state = JobState::Windowed;
    job.windowId = window->id;
    job.windowSlot = slot;
    job.windowStartAt = now;
    JIGSAW_LOG_TRACE(schedulerLog(), "job joined window",
                     log::kv("job", job.id),
                     log::kv("window", window->id),
                     log::kv("slot", slot));
    // High-priority jobs never trade latency for merging: their
    // window closes on the spot (with whatever has joined so far).
    // Quarantined retries close theirs too — they have waited enough.
    if (job.priority == Priority::High || job.quarantined || stopping_)
        window->deadline = now;
    if (window->jobIds.size() >= options_.windowMaxJobs ||
        window->exclusive || window->deadline <= now)
        closeWindow(*window, now);
}

void
StreamingScheduler::closeWindow(Window &window, Clock::time_point now)
{
    if (window.closed)
        return;
    window.closed = true;
    JIGSAW_LOG_DEBUG(schedulerLog(), "window closed",
                     log::kv("window", window.id),
                     log::kv("jobs", window.jobIds.size()),
                     log::kv("waited_ms",
                             msBetweenImpl(window.openedAt, now)));
    ReadyEntry entry;
    entry.isWindow = true;
    entry.id = window.id;
    entry.cls = window.bestClass;
    entry.readySince = now;
    entry.cost = std::max<std::size_t>(window.jobIds.size(), 1);
    entry.tenant = jobs_.at(window.jobIds.front())->program.tenant;
    readyQueue_.push_back(std::move(entry));
}

bool
StreamingScheduler::dispatchNext(Clock::time_point now)
{
    if (readyQueue_.empty() || inFlight_ >= inFlightCap())
        return false;
    // Strongest aged class present anywhere in the queue...
    std::size_t best_class = kPriorityClasses;
    for (const ReadyEntry &entry : readyQueue_) {
        best_class = std::min(
            best_class,
            effectiveClass(entry.cls,
                           msBetweenImpl(entry.readySince, now),
                           options_.agingMs));
    }
    // ...then, inside that class, each tenant's earliest-ready entry
    // is its candidate and deficit round-robin picks among tenants:
    // every visited tenant earns one quantum, a candidate dispatches
    // once its tenant's deficit covers the entry's cost (its window's
    // job count), so a hot tenant pays for big windows while idle
    // tenants' deficits reset. One scan of the rotation per quantum;
    // a candidate always exists in-class, so the sweep terminates
    // within rotation * (windowMaxJobs + 1) visits.
    std::unordered_map<std::string, std::size_t> candidate;
    for (std::size_t i = 0; i < readyQueue_.size(); ++i) {
        const ReadyEntry &entry = readyQueue_[i];
        if (effectiveClass(entry.cls,
                           msBetweenImpl(entry.readySince, now),
                           options_.agingMs) != best_class)
            continue;
        const auto it = candidate.find(entry.tenant);
        if (it == candidate.end() ||
            entry.readySince < readyQueue_[it->second].readySince)
            candidate[entry.tenant] = i;
    }
    const std::size_t rotation = tenantRotation_.size();
    panicIf(rotation == 0 || candidate.empty(),
            "dispatch: ready entry without tenant");
    const std::size_t max_steps =
        rotation * (options_.windowMaxJobs + 2);
    for (std::size_t step = 0; step < max_steps; ++step) {
        const std::string &tenant =
            tenantRotation_[rrCursor_++ % rotation];
        const auto cit = candidate.find(tenant);
        if (cit == candidate.end()) {
            tenantDeficit_[tenant] = 0.0; // idle tenants bank nothing
            continue;
        }
        double &deficit = tenantDeficit_[tenant];
        const ReadyEntry &entry = readyQueue_[cit->second];
        deficit += 1.0;
        if (deficit + 1e-9 < static_cast<double>(entry.cost))
            continue;
        deficit -= static_cast<double>(entry.cost);
        const ReadyEntry taken = entry;
        readyQueue_.erase(readyQueue_.begin() +
                          static_cast<std::ptrdiff_t>(cit->second));
        // Last-chance SLO check: a job aged out while its unit
        // queued for a slot (or gathered window partners) expires
        // here instead of executing past its deadline.
        if (taken.isWindow) {
            const auto it = windows_.find(taken.id);
            panicIf(it == windows_.end(), "dispatch: window vanished");
            const std::vector<std::uint64_t> members =
                it->second->jobIds;
            for (const std::uint64_t member : members) {
                Job &job = *jobs_.at(member);
                if (isSet(job.deadlineAt) && job.deadlineAt <= now)
                    withdrawLocked(job, JobState::Expired,
                                   deadlineError());
            }
            // Withdrawing the last member erased the window; the
            // freed slot still counts as progress.
            const auto again = windows_.find(taken.id);
            if (again == windows_.end())
                return true;
            dispatchWindow(*again->second, now);
        } else {
            Job &job = *jobs_.at(taken.id);
            if (isSet(job.deadlineAt) && job.deadlineAt <= now) {
                withdrawLocked(job, JobState::Expired, deadlineError());
                return true;
            }
            dispatchSolo(job, now);
        }
        return true;
    }
    panicIf(true, "dispatch: deficit round-robin failed to pick");
    return false;
}

void
StreamingScheduler::dispatchSolo(Job &job, Clock::time_point now)
{
    job.state = JobState::Dispatched;
    job.dispatchAt = now;
    --backlog_;
    ++inFlight_;
    ++stats_.loneDispatches;
    obs::TraceRecorder *trace = options_.trace.get();
    if (trace != nullptr)
        trace->record(job.id, job.traceEpoch, "dispatch",
                      trace->toMs(now), 0.0, 0, 0);
    JIGSAW_LOG_TRACE(schedulerLog(), "solo dispatch",
                     log::kv("job", job.id));
    JigsawSession *session = job.session.get();
    std::shared_ptr<JigsawResult> *result_slot = &job.result;
    const std::uint64_t id = job.id;
    const std::uint32_t epoch = job.traceEpoch;
    group_.run(
        [session, result_slot, trace, id, epoch] {
            if (trace != nullptr) {
                // Stepwise for the span split: executed() runs the
                // execute stage, run() the remaining reconstruction.
                const double exec_start = trace->nowMs();
                session->executed();
                const double recon_start = trace->nowMs();
                trace->record(id, epoch, "execute", exec_start,
                              recon_start - exec_start, 0, 0);
                *result_slot =
                    std::make_shared<JigsawResult>(session->run());
                trace->record(id, epoch, "reconstruct", recon_start,
                              trace->nowMs() - recon_start, 0, 0);
            } else {
                *result_slot =
                    std::make_shared<JigsawResult>(session->run());
            }
        },
        [this, id](std::exception_ptr error) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                Job &done = *jobs_.at(id);
                --inFlight_;
                if (error) {
                    handleJobFailure(done, error, Clock::now(), false);
                } else {
                    finishJob(done, JobState::Done, nullptr);
                    releaseJobState(done);
                }
            }
            dispatcherCv_.notify_all();
            jobCv_.notify_all();
        });
}

void
StreamingScheduler::dispatchWindow(Window &window, Clock::time_point now)
{
    panicIf(window.jobIds.empty(), "dispatch: empty window");
    window.dispatched = true;
    window.remaining = window.jobIds.size();
    ++inFlight_;
    if (window.jobIds.size() >= 2) {
        ++stats_.mergedWindows;
        stats_.mergedJobs += window.jobIds.size();
    } else {
        ++stats_.loneDispatches;
    }
    obs::TraceRecorder *trace = options_.trace.get();
    for (const std::uint64_t id : window.jobIds) {
        Job &job = *jobs_.at(id);
        job.state = JobState::Dispatched;
        job.dispatchAt = now;
        --backlog_;
        if (trace != nullptr) {
            trace->record(job.id, job.traceEpoch, "window",
                          trace->toMs(job.windowStartAt),
                          msBetweenImpl(job.windowStartAt, now),
                          window.id, 0);
            trace->record(job.id, job.traceEpoch, "dispatch",
                          trace->toMs(now), 0.0, window.id, 0);
        }
    }
    JIGSAW_LOG_DEBUG(schedulerLog(), "window dispatched",
                     log::kv("window", window.id),
                     log::kv("jobs", window.jobIds.size()),
                     log::kv("backend", transport_ != nullptr
                                            ? "worker"
                                            : "local"));
    if (transport_ != nullptr) {
        grantLeaseLocked(window, 0, now);
        return;
    }
    runWindowLocallyLocked(window);
}

void
StreamingScheduler::runWindowLocallyLocked(Window &window)
{
    const std::uint64_t window_id = window.id;
    group_.run([this, window_id] { runWindowTask(window_id); },
               [this, window_id](std::exception_ptr error) {
                   // runWindowTask handles its own errors; anything
                   // reaching here is a scheduler bug surfaced as a
                   // window-wide failure.
                   if (!error)
                       return;
                   std::vector<std::uint64_t> members;
                   {
                       std::lock_guard<std::mutex> lock(mutex_);
                       const auto it = windows_.find(window_id);
                       if (it == windows_.end())
                           return;
                       members = it->second->jobIds;
                       for (const std::uint64_t id : members) {
                           Job &job = *jobs_.at(id);
                           if (job.state == JobState::Dispatched)
                               finishJob(job, JobState::Failed, error);
                       }
                       windows_.erase(it);
                       --inFlight_;
                   }
                   dispatcherCv_.notify_all();
                   jobCv_.notify_all();
               });
}

void
StreamingScheduler::runWindowTask(std::uint64_t window_id)
{
    Window *window = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        window = windows_.at(window_id).get();
    }
    // The window is immutable once dispatched (cancel refuses), so
    // sources/merged are safe to read without the lock.
    MergedExecutionStats exec_stats;
    std::exception_ptr error;
    std::shared_ptr<std::vector<ExecutionResult>> executions;
    const auto execute_start = Clock::now();
    try {
        executions = std::make_shared<std::vector<ExecutionResult>>(
            executeMergedSchedules(window->sources, window->merged,
                                   &exec_stats));
    } catch (...) {
        error = std::current_exception();
    }
    const double execute_ms =
        msBetweenImpl(execute_start, Clock::now());
    {
        std::lock_guard<std::mutex> lock(mutex_);
        completeWindowExecutionLocked(window_id, std::move(executions),
                                      exec_stats, error, execute_ms,
                                      0);
    }
    dispatcherCv_.notify_all();
    jobCv_.notify_all();
}

void
StreamingScheduler::completeWindowExecutionLocked(
    std::uint64_t window_id,
    std::shared_ptr<std::vector<ExecutionResult>> executions,
    const MergedExecutionStats &exec_stats, std::exception_ptr error,
    double execute_ms, std::uint64_t lease_id)
{
    Window &window = *windows_.at(window_id);
    // slotJob is stable once the window dispatched (cancel refuses),
    // so the live set is the same whichever backend executed it, and
    // however many lost leases preceded the completing attempt.
    std::vector<std::pair<std::uint64_t, std::size_t>> live;
    for (std::size_t slot = 0; slot < window.slotJob.size(); ++slot) {
        if (window.slotJob[slot] != 0)
            live.push_back({window.slotJob[slot], slot});
    }
    // Counted once per completed window — lost leases never reach
    // here, so worker re-dispatch cannot inflate the merge counters.
    stats_.crossProgramGroups += window.merged.crossProgramGroups();
    stats_.pooledGlobalBatches += exec_stats.pooledGlobalBatches;
    stats_.pooledGlobalPrograms += exec_stats.pooledGlobalPrograms;
    if (error) {
        // Window poisoning: one bad program must not kill its
        // partners. With >= 2 members each is quarantined for a
        // solo retry (free of retry-budget charge); a job failing
        // alone is handled on its own merits (transient retry
        // within budget, else terminal failure). A window failing
        // ON A WORKER routes through here identically, so quarantine
        // composes with the worker tier.
        const bool quarantine = live.size() >= 2;
        JIGSAW_LOG_WARN(schedulerLog(), "window execution failed",
                        log::kv("window", window_id),
                        log::kv("jobs", live.size()),
                        log::kv("quarantine", quarantine));
        const auto now = Clock::now();
        for (const auto &[id, slot] : live) {
            Job &job = *jobs_.at(id);
            handleJobFailure(job, error, now, quarantine);
        }
        windows_.erase(window_id);
        --inFlight_;
        return;
    }
    // Per-job resume: adopt the split-back execution slice and
    // reconstruct, one pool task per job so reconstructions overlap.
    // (group_.run only enqueues, so submitting under the lock is
    // safe; the tasks themselves run unlocked.)
    obs::TraceRecorder *trace = options_.trace.get();
    const double execute_end =
        trace != nullptr ? trace->nowMs() : 0.0;
    for (const auto &[id, slot] : live) {
        Job &job = *jobs_.at(id);
        if (trace != nullptr)
            trace->record(id, job.traceEpoch, "execute",
                          execute_end - execute_ms, execute_ms,
                          window_id, lease_id);
        JigsawSession *session = job.session.get();
        std::shared_ptr<JigsawResult> *result_slot = &job.result;
        const std::uint32_t epoch = job.traceEpoch;
        group_.run(
            [session, result_slot, executions, slot = slot, trace,
             id = id, epoch, window_id] {
                const double recon_start =
                    trace != nullptr ? trace->nowMs() : 0.0;
                session->adoptExecution(
                    std::move((*executions)[slot]));
                *result_slot =
                    std::make_shared<JigsawResult>(session->run());
                if (trace != nullptr)
                    trace->record(id, epoch, "reconstruct",
                                  recon_start,
                                  trace->nowMs() - recon_start,
                                  window_id, 0);
            },
            [this, id = id, window_id](std::exception_ptr job_error) {
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    Job &done = *jobs_.at(id);
                    if (job_error) {
                        handleJobFailure(done, job_error, Clock::now(),
                                         false);
                    } else {
                        finishJob(done, JobState::Done, nullptr);
                        releaseJobState(done);
                    }
                    Window &done_window = *windows_.at(window_id);
                    if (--done_window.remaining == 0) {
                        windows_.erase(window_id);
                        --inFlight_;
                    }
                }
                dispatcherCv_.notify_all();
                jobCv_.notify_all();
            });
    }
}

WindowRequest
StreamingScheduler::buildRequestLocked(Window &window,
                                       std::uint64_t lease_id) const
{
    WindowRequest request;
    request.leaseId = lease_id;
    request.heartbeatMs = options_.worker.heartbeatMs;
    request.sources = window.sources;
    request.merged = window.merged;
    request.seeds.resize(window.sources.size(), 0);
    for (std::size_t slot = 0; slot < window.slotJob.size(); ++slot) {
        // Unbind: the worker late-binds its own executor and a fresh
        // Rng(executorSeed) stream, leaving the job's canonical
        // stream untouched for any later local fallback to replay.
        request.sources[slot].executor = nullptr;
        request.sources[slot].rng = nullptr;
        const std::uint64_t job_id = window.slotJob[slot];
        if (job_id == 0)
            continue; // withdrawn slot: stays disabled and unbound
        const Job &job = *jobs_.at(job_id);
        request.seeds[slot] = job.program.executorSeed;
        request.retain.push_back(job.session);
        if (request.device == nullptr)
            request.device = std::make_shared<device::DeviceModel>(
                job.program.device);
    }
    return request;
}

void
StreamingScheduler::grantLeaseLocked(Window &window,
                                     std::size_t attempts,
                                     Clock::time_point now)
{
    for (; attempts <= options_.worker.workerRetries; ++attempts) {
        if (transport_->liveWorkers() == 0)
            break; // dead fleet: straight to the degradation floor
        const std::uint64_t lease_id = nextLeaseId_++;
        try {
            transport_->send(buildRequestLocked(window, lease_id));
        } catch (...) {
            // Send failure (including an injected transport.send
            // fault): the lease never reached the fleet — count it
            // lost and try again. The jobs' retry budget is never
            // charged for fleet trouble.
            ++stats_.leasesRevoked;
            JIGSAW_LOG_INFO(schedulerLog(), "lease send failed",
                            log::kv("window", window.id),
                            log::kv("attempt", attempts));
            continue;
        }
        Lease lease;
        lease.id = lease_id;
        lease.windowId = window.id;
        lease.attempts = attempts;
        lease.deadline =
            now + msDuration(options_.worker.leaseTimeoutMs);
        leases_.emplace(lease_id, lease);
        ++stats_.leasesGranted;
        if (attempts > 0)
            ++stats_.redispatches;
        JIGSAW_LOG_DEBUG(schedulerLog(),
                         attempts > 0 ? "window re-dispatched"
                                      : "lease granted",
                         log::kv("lease", lease_id),
                         log::kv("window", window.id),
                         log::kv("attempt", attempts));
        return;
    }
    // Graceful degradation: the fleet is dead or burned through
    // workerRetries leases — run the window on the local pool, the
    // path a transportless scheduler always takes.
    ++stats_.localFallbacks;
    JIGSAW_LOG_WARN(schedulerLog(),
                    "worker tier exhausted; window falling back to "
                    "local execution",
                    log::kv("window", window.id),
                    log::kv("lost_leases", attempts),
                    log::kv("live_workers", transport_->liveWorkers()));
    runWindowLocallyLocked(window);
}

void
StreamingScheduler::superviseLeasesLocked(Clock::time_point now)
{
    if (leases_.empty())
        return;
    struct Lost
    {
        Lease lease;
        bool expired = false; ///< Deadline (vs worker death).
    };
    std::vector<Lost> lost;
    for (const auto &[id, lease] : leases_) {
        const bool expired = now >= lease.deadline;
        bool dead = false;
        if (const auto silence = transport_->msSinceHeartbeat(id)) {
            // A worker holds it: heartbeat silence past the timeout
            // means the worker died mid-window.
            dead = *silence > options_.worker.heartbeatTimeoutMs;
        } else {
            // Unassigned: still queued (the deadline covers slow
            // pickup) — unless no live worker remains to ever take it.
            dead = transport_->liveWorkers() == 0;
        }
        if (expired || dead)
            lost.push_back({lease, expired});
    }
    for (const Lost &entry : lost) {
        leases_.erase(entry.lease.id);
        transport_->revoke(entry.lease.id);
        if (entry.expired)
            ++stats_.leasesExpired;
        else
            ++stats_.leasesRevoked;
        JIGSAW_LOG_WARN(schedulerLog(),
                        entry.expired
                            ? "lease deadline expired; revoking"
                            : "worker lost (heartbeat silence); "
                              "revoking lease",
                        log::kv("lease", entry.lease.id),
                        log::kv("window", entry.lease.windowId),
                        log::kv("attempt", entry.lease.attempts));
        const auto wit = windows_.find(entry.lease.windowId);
        panicIf(wit == windows_.end(),
                "lease supervision: window vanished under a lease");
        grantLeaseLocked(*wit->second, entry.lease.attempts + 1, now);
    }
}

void
StreamingScheduler::drainTransportLocked()
{
    for (;;) {
        std::optional<WindowResponse> response;
        try {
            response = transport_->tryRecv();
        } catch (...) {
            // recv failure (including an injected transport.recv
            // fault): that response is lost in flight; its lease
            // deadline re-dispatches the window.
            continue;
        }
        if (!response)
            return;
        const auto lit = leases_.find(response->leaseId);
        if (lit == leases_.end()) {
            // A revoked lease answering late: the window already
            // completed (or is completing) another way; the envelope
            // is dropped whole, so the duplicate execution is
            // invisible outside this counter.
            ++stats_.staleResponses;
            JIGSAW_LOG_DEBUG(schedulerLog(),
                             "stale lease response dropped",
                             log::kv("lease", response->leaseId),
                             log::kv("worker", response->worker));
            continue;
        }
        const std::uint64_t window_id = lit->second.windowId;
        const std::uint64_t lease_id = lit->first;
        leases_.erase(lit);
        if (response->ok) {
            if (stats_.workerCompleted.size() <= response->worker)
                stats_.workerCompleted.resize(response->worker + 1, 0);
            ++stats_.workerCompleted[response->worker];
            completeWindowExecutionLocked(
                window_id,
                std::make_shared<std::vector<ExecutionResult>>(
                    std::move(response->results)),
                response->execStats, nullptr, response->executeMs,
                lease_id);
        } else {
            // A job-level failure ON the worker (not a lost lease):
            // the regular quarantine/retry routing applies, exactly
            // as if the local path had thrown.
            completeWindowExecutionLocked(window_id, nullptr,
                                          response->execStats,
                                          responseError(*response),
                                          response->executeMs,
                                          lease_id);
        }
    }
}

std::optional<StreamingScheduler::Clock::time_point>
StreamingScheduler::nextLeaseEventLocked(Clock::time_point now) const
{
    if (leases_.empty())
        return std::nullopt;
    // Poll cadence for death detection: half the heartbeat timeout
    // keeps worst-case detection latency ~1.5x the timeout without
    // busy-waiting; lease deadlines may be sooner.
    auto next = now + msDuration(std::max(
                          options_.worker.heartbeatTimeoutMs, 1.0) /
                      2.0);
    for (const auto &[id, lease] : leases_) {
        if (lease.deadline < next)
            next = lease.deadline;
    }
    return next;
}

void
StreamingScheduler::requeueLocked(Job &job, Clock::time_point retry_at)
{
    // Full pipeline restart: drop the partially-consumed session,
    // stream, and executor reference so the retried job replays its
    // draws from Rng(executorSeed) — bitwise-identical to a run that
    // was never disturbed.
    const bool was_backlogged = job.state != JobState::Dispatched;
    releaseJobState(job);
    job.result.reset();
    job.error = nullptr;
    job.windowId = 0;
    job.windowSlot = kNoSlot;
    job.windowStartAt = {};
    ++job.traceEpoch; // the retry's spans form a fresh attempt set
    job.state = JobState::Queued;
    job.retryAt = retry_at;
    if (!was_backlogged)
        ++backlog_;
    retryQueue_.push_back(job.id);
}

void
StreamingScheduler::handleJobFailure(Job &job, std::exception_ptr error,
                                     Clock::time_point now,
                                     bool quarantine)
{
    if (quarantine && !job.quarantined) {
        // First poisoned window for this job: it may be innocent, so
        // the solo retry costs no retry budget and no backoff. If its
        // exclusive window fails too, the failure is its own and the
        // normal transient/terminal handling below takes over.
        job.quarantined = true;
        ++stats_.quarantinedJobs;
        JIGSAW_LOG_WARN(schedulerLog(), "job quarantined for solo retry",
                        log::kv("job", job.id));
        requeueLocked(job, now);
        return;
    }
    if (isTransient(error) &&
        job.attempts < options_.maxRetries) {
        ++job.attempts;
        ++stats_.retries;
        const double backoff = std::min(
            options_.retryBackoffMs *
                std::ldexp(1.0, static_cast<int>(job.attempts) - 1),
            options_.retryBackoffMaxMs);
        JIGSAW_LOG_INFO(schedulerLog(), "transient failure; retrying",
                        log::kv("job", job.id),
                        log::kv("attempt", job.attempts),
                        log::kv("backoff_ms", backoff));
        const auto retry_at =
            stopping_ ? now : now + msDuration(backoff);
        if (isSet(job.deadlineAt) && retry_at >= job.deadlineAt) {
            // The backoff alone would blow the SLO: expire now
            // instead of burning a retry that cannot finish in time.
            finishJob(job, JobState::Expired, deadlineError());
            releaseJobState(job);
            return;
        }
        requeueLocked(job, retry_at);
        return;
    }
    finishJob(job, JobState::Failed, error);
    releaseJobState(job);
}

void
StreamingScheduler::expireDueJobsLocked(Clock::time_point now)
{
    if (deadlined_.empty())
        return;
    std::erase_if(deadlined_, [&](std::uint64_t id) {
        const auto it = jobs_.find(id);
        if (it == jobs_.end())
            return true; // released/evicted
        Job &job = *it->second;
        switch (job.state) {
          case JobState::Queued:
          case JobState::Preparing:
          case JobState::Windowed:
            if (job.deadlineAt <= now) {
                withdrawLocked(job, JobState::Expired,
                               deadlineError());
                return true;
            }
            return false;
          case JobState::Dispatched:
            // Past the point of no return — but a transient failure
            // may requeue it, so keep watching.
            return false;
          default:
            return true; // terminal
        }
    });
}

void
StreamingScheduler::releaseJobState(Job &job)
{
    // A terminal job keeps its result, error, and timestamps for
    // poll()/wait(), but the heavyweight pipeline state — session
    // artifacts, draw stream, executor reference — is dead weight for
    // a long-running service, so each finish site drops it as soon as
    // no pool task can still touch the session. (Cancel-mid-prepare
    // defers to onPrepared; the defensive window-task-failure
    // callback skips the release because member tasks may be live.)
    job.session.reset();
    job.stream.reset();
    job.executor.reset();
}

void
StreamingScheduler::finishJob(Job &job, JobState state,
                              std::exception_ptr error)
{
    const JobState prior = job.state;
    job.state = state;
    job.doneAt = Clock::now();
    job.error = error;
    --liveJobs_;
    if (prior == JobState::Queued || prior == JobState::Preparing ||
        prior == JobState::Windowed)
        --backlog_;
    switch (state) {
      case JobState::Done:
        ++stats_.completed;
        ++stats_.completedByClass[static_cast<std::size_t>(
            job.priority)];
        JIGSAW_LOG_TRACE(schedulerLog(), "job done",
                         log::kv("job", job.id),
                         log::kv("attempts", job.attempts));
        break;
      case JobState::Failed:
        ++stats_.failed;
        JIGSAW_LOG_INFO(schedulerLog(), "job failed",
                        log::kv("job", job.id),
                        log::kv("attempts", job.attempts));
        break;
      case JobState::Cancelled:
        ++stats_.cancelled;
        JIGSAW_LOG_DEBUG(schedulerLog(), "job cancelled",
                         log::kv("job", job.id));
        jobCv_.notify_all();
        return; // no latency sample: the job never ran
      case JobState::Expired:
        ++stats_.expired;
        JIGSAW_LOG_INFO(schedulerLog(), "job expired past its SLO",
                        log::kv("job", job.id),
                        log::kv("deadline_ms", job.program.deadlineMs));
        jobCv_.notify_all();
        return; // likewise: it never dispatched
      default:
        panicIf(true, "finishJob: non-terminal state");
    }
    // Completion-interval EWMA: the drain-rate estimate behind shed
    // submits' tryLaterAfterMs hints.
    if (isSet(lastCompletionAt_)) {
        const double interval =
            msBetweenImpl(lastCompletionAt_, job.doneAt);
        drainEwmaMs_ = drainEwmaMs_ > 0.0
                           ? 0.8 * drainEwmaMs_ + 0.2 * interval
                           : interval;
    } else {
        // Cold start: no completion interval exists yet, but this
        // first job's execute latency is a far better drain estimate
        // than the windowMs fallback retryHintMsLocked would use —
        // with a long merge window that fallback overstates the hint
        // by orders of magnitude.
        const double execute_ms =
            msBetweenImpl(job.dispatchAt, job.doneAt);
        if (execute_ms > 0.0)
            drainEwmaMs_ = execute_ms;
    }
    lastCompletionAt_ = job.doneAt;
    const double queue_wait_ms = msBetweenImpl(
        job.submitAt, job.dispatchAt.time_since_epoch().count()
                          ? job.dispatchAt
                          : job.doneAt);
    const double execute_ms = msBetweenImpl(job.dispatchAt, job.doneAt);
    const double total_ms = msBetweenImpl(job.submitAt, job.doneAt);
    // Every job lands in the fixed-bucket histograms — the local
    // per-class copies behind the StreamStats percentile views, and
    // the process-wide registry instruments a scrape reads. Both are
    // bounded by construction, so the double-observe replaces the old
    // sample reservoir without re-introducing per-job memory.
    ++stats_.jobsObserved;
    const std::size_t cls = static_cast<std::size_t>(job.priority);
    stats_.latencyByClass[cls].observe(total_ms);
    stats_.queueWaitByClass[cls].observe(queue_wait_ms);
    stats_.executeByClass[cls].observe(execute_ms);
    latencyHist_[cls]->observe(total_ms);
    queueWaitHist_[cls]->observe(queue_wait_ms);
    executeHist_[cls]->observe(execute_ms);
    jobCv_.notify_all();
}

void
StreamingScheduler::dispatcherLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        const auto now = Clock::now();

        // Expire SLO-missed jobs before they consume anything else.
        expireDueJobsLocked(now);

        // Worker tier: land completed windows first (a response in
        // hand beats re-dispatching its lease), then revoke leases
        // whose worker died or deadline passed.
        if (transport_ != nullptr) {
            drainTransportLocked();
            superviseLeasesLocked(now);
        }

        // Move due retries (all of them when stopping) into admission.
        if (!retryQueue_.empty()) {
            std::erase_if(retryQueue_, [&](std::uint64_t id) {
                Job &job = *jobs_.at(id);
                if (stopping_ || job.retryAt <= now) {
                    admission_.push_back(id);
                    return true;
                }
                return false;
            });
        }

        // Admit queued jobs into their prepare stage, strongest aged
        // class first (matters when submissions outrun the pool). The
        // prepare gate keeps the pool's FIFO task queue shallow —
        // roughly one prepare in flight per execution slot — so jobs
        // held back wait HERE, where the strongest class is re-picked
        // every pass, instead of in the pool queue, which has no
        // notion of priority. High-class jobs bypass the gate: a
        // fresh High submission must reach the pool without queuing
        // behind the whole backlog's stage work.
        while (!admission_.empty()) {
            std::size_t best = 0;
            std::size_t best_class = kPriorityClasses;
            for (std::size_t i = 0; i < admission_.size(); ++i) {
                const Job &job = *jobs_.at(admission_[i]);
                const std::size_t cls = effectiveClass(
                    job.priority, msBetweenImpl(job.submitAt, now),
                    options_.agingMs);
                if (cls < best_class) {
                    best = i;
                    best_class = cls;
                }
            }
            if (best_class != 0 && preparing_ >= inFlightCap() + 1)
                break;
            Job &job = *jobs_.at(admission_[best]);
            admission_.erase(admission_.begin() +
                             static_cast<std::ptrdiff_t>(best));
            startPrepare(job);
        }

        // Window the jobs whose pipeline stages completed.
        if (!scheduleReady_.empty()) {
            const std::vector<std::uint64_t> ready =
                std::move(scheduleReady_);
            scheduleReady_.clear();
            for (const std::uint64_t id : ready) {
                Job &job = *jobs_.at(id);
                if (isTerminal(job.state))
                    continue;
                joinWindow(job, now);
            }
        }

        // Close expired windows.
        for (auto &[id, window] : windows_) {
            if (!window->closed && window->deadline <= now)
                closeWindow(*window, now);
        }

        // Dispatch while slots are free.
        while (dispatchNext(now)) {
        }

        if (stopping_ && liveJobs_ == 0)
            return;

        // On a worker-less pool nothing else drains the task queue
        // when callers only poll(); the dispatcher pitches in.
        if (detail::sharedPool().workerCount() == 0 &&
            (inFlight_ > 0 || preparing_ > 0)) {
            lock.unlock();
            const bool ran = detail::sharedPool().tryRunOneTask();
            lock.lock();
            if (ran)
                continue;
        }

        // Sleep until the next timed event — window deadline, retry
        // backoff, or job SLO — or a notification.
        std::optional<Clock::time_point> next;
        const auto consider = [&next](Clock::time_point at) {
            if (!next || at < *next)
                next = at;
        };
        for (const auto &[id, window] : windows_) {
            if (!window->closed)
                consider(window->deadline);
        }
        for (const std::uint64_t id : retryQueue_)
            consider(jobs_.at(id)->retryAt);
        for (const std::uint64_t id : deadlined_) {
            const auto it = jobs_.find(id);
            if (it == jobs_.end())
                continue;
            const Job &job = *it->second;
            if (!isTerminal(job.state) &&
                job.state != JobState::Dispatched)
                consider(job.deadlineAt);
        }
        if (const auto lease_event = nextLeaseEventLocked(now))
            consider(*lease_event);
        if (!admission_.empty() || !scheduleReady_.empty())
            continue; // new work arrived while dispatching
        if (detail::sharedPool().workerCount() == 0 &&
            (inFlight_ > 0 || preparing_ > 0)) {
            dispatcherCv_.wait_for(lock, std::chrono::milliseconds(1));
        } else if (next) {
            dispatcherCv_.wait_until(lock, *next);
        } else {
            dispatcherCv_.wait(lock);
        }
    }
}

} // namespace core
} // namespace jigsaw
