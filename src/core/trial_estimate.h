/**
 * @file
 * Trial-budget estimation for CPMs (paper Appendix A.2).
 *
 * A CPM over s qubits has at most 2^s distinct outcomes. Under the
 * worst case of a uniform output distribution, the probability that a
 * given outcome has been seen at least once after t trials is
 * P = 1 - (1 - 2^-s)^t ~ 1 - e^(-t / 2^s) (Eqs. 6-7), so observing
 * every outcome at least once with confidence P needs
 * t = -ln(1 - P) * (2^s)^2 trials in total (Eq. 9). For the default
 * subset size 2 this is about 150 trials at 99.99% confidence, which
 * is why splitting half the budget over n CPMs is comfortable.
 */
#ifndef JIGSAW_CORE_TRIAL_ESTIMATE_H
#define JIGSAW_CORE_TRIAL_ESTIMATE_H

#include <cstdint>

namespace jigsaw {
namespace core {

/**
 * Probability that one specific outcome of a uniform 2^s-outcome CPM
 * appears at least once within @p trials trials (Eq. 6).
 */
double coverageProbability(int subset_size, std::uint64_t trials);

/**
 * Trials needed so one specific outcome appears at least once with
 * probability @p confidence (Eq. 8).
 */
std::uint64_t trialsForOutcome(int subset_size, double confidence);

/**
 * Total trials needed so *every* outcome of the CPM appears at least
 * once with probability @p confidence each (Eq. 9: the per-outcome
 * requirement times the 2^s outcomes).
 */
std::uint64_t trialsForFullCoverage(int subset_size, double confidence);

} // namespace core
} // namespace jigsaw

#endif // JIGSAW_CORE_TRIAL_ESTIMATE_H
