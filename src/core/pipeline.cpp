#include "core/pipeline.h"

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/error.h"
#include "common/fault.h"
#include "common/log.h"
#include "common/parallel.h"
#include "compiler/cpm_batch.h"
#include "sim/eps.h"

namespace jigsaw {
namespace core {

namespace {

/** Generate the run's subsets over @p n measured bit positions. */
std::vector<Subset>
generateSubsets(int n, const JigsawOptions &options)
{
    if (options.customSubsets) {
        validateSubsets(n, *options.customSubsets);
        return *options.customSubsets;
    }

    std::vector<Subset> subsets;
    Rng rng(options.seed);
    for (int size : options.subsetSizes) {
        fatalIf(size < 1 || size > n,
                "planSubsets: subset size out of range");
        std::vector<Subset> layer;
        switch (options.subsetMethod) {
          case SubsetMethod::SlidingWindow:
            layer = slidingWindowSubsets(n, size);
            break;
          case SubsetMethod::RandomCovering:
            layer = coveringRandomSubsets(n, size, rng);
            break;
        }
        subsets.insert(subsets.end(), layer.begin(), layer.end());
    }
    return subsets;
}

/**
 * Build the CPM for @p logical_qubits without recompilation: the
 * global compilation's physical circuit, measuring only the subset's
 * physical qubits (via the final layout). The gate prefix is the
 * global circuit's, so its success probability is reused instead of
 * being recomputed per subset; only the readout term is per-subset.
 */
compiler::CompiledCircuit
cpmFromGlobal(const compiler::CompiledCircuit &global,
              const std::vector<int> &logical_qubits,
              const device::DeviceModel &dev)
{
    std::vector<int> physical_qubits;
    physical_qubits.reserve(logical_qubits.size());
    for (int lq : logical_qubits)
        physical_qubits.push_back(global.finalLayout.physicalOf(lq));

    compiler::CompiledCircuit cpm{
        global.physical.withMeasurementSubset(physical_qubits),
        global.initialLayout,
        global.finalLayout,
        global.swapCount,
        0.0,
        0.0,
        0.0,
    };
    cpm.gateSuccess = global.gateSuccess;
    cpm.measurementSuccess =
        sim::measurementSuccessProbability(cpm.physical, dev);
    cpm.eps = cpm.gateSuccess * cpm.measurementSuccess;
    return cpm;
}

} // namespace

SubsetPlan
planSubsets(const circuit::QuantumCircuit &logical,
            std::uint64_t total_trials, const JigsawOptions &options)
{
    // Stage fault points sit at entry: nothing is cached or sampled
    // yet, so an injected failure leaves no partial state behind.
    injectFaultPoint("stage.plan");
    fatalIf(total_trials < 2, "planSubsets: need at least two trials");
    fatalIf(options.globalFraction <= 0.0 || options.globalFraction >= 1.0,
            "planSubsets: globalFraction must be in (0, 1)");

    SubsetPlan plan;
    plan.nMeasured = logical.countMeasurements();
    fatalIf(plan.nMeasured < 2,
            "planSubsets: program must measure >= 2 qubits");
    plan.totalTrials = total_trials;
    plan.globalTrials = static_cast<std::uint64_t>(
        static_cast<double>(total_trials) * options.globalFraction);

    plan.subsets = generateSubsets(plan.nMeasured, options);
    fatalIf(plan.subsets.empty(), "planSubsets: no subsets generated");

    // Split the subset budget evenly, handing the integer-division
    // remainder to the first CPMs one trial each, so the run spends
    // exactly the budget it was given (globalTrials + subsetTrials ==
    // totalTrials whenever the budget covers one trial per CPM).
    const std::uint64_t subset_budget = total_trials - plan.globalTrials;
    const std::uint64_t per_cpm_base = subset_budget / plan.subsets.size();
    const std::uint64_t remainder = subset_budget % plan.subsets.size();
    plan.perCpmTrials.reserve(plan.subsets.size());
    for (std::size_t s = 0; s < plan.subsets.size(); ++s) {
        const std::uint64_t per_cpm = std::max<std::uint64_t>(
            1, per_cpm_base + (s < remainder ? 1 : 0));
        plan.perCpmTrials.push_back(per_cpm);
        plan.subsetTrials += per_cpm;
    }
    return plan;
}

CompiledJobs
compileJobs(const circuit::QuantumCircuit &logical,
            const device::DeviceModel &dev, const SubsetPlan &plan,
            const JigsawOptions &options)
{
    injectFaultPoint("stage.compile");
    // Map classical bit -> logical qubit for CPM construction.
    const std::vector<int> qubit_of_clbit = logical.measuredQubits();

    CompiledJobs jobs{
        compiler::transpileCached(logical, dev, options.transpile),
        {},
        0,
        0};

    // CPM recompilation must not add SWAPs over the global schedule
    // (Section 4.2.2's "avoid extra SWAPs" rule).
    compiler::TranspileOptions cpm_options = options.transpile;
    cpm_options.maxSwaps = jobs.global.swapCount;

    // The batched recompiler routes each distinct placement of the
    // logical gate prefix once; created lazily so fully memoized runs
    // (every CPM already in the transpile cache) skip its setup too.
    std::optional<compiler::CpmRecompiler> recompiler;

    jobs.cpms.reserve(plan.subsets.size());
    for (std::size_t s = 0; s < plan.subsets.size(); ++s) {
        const Subset &subset = plan.subsets[s];
        std::vector<int> logical_qubits;
        logical_qubits.reserve(subset.size());
        for (int c : subset) {
            fatalIf(c < 0 || c >= plan.nMeasured,
                    "compileJobs: subset bit out of range");
            logical_qubits.push_back(
                qubit_of_clbit[static_cast<std::size_t>(c)]);
        }

        // Recompilation considers the global allocation as a candidate
        // too (the paper notes most CPMs can reuse existing
        // allocations), so a recompiled CPM never has a lower expected
        // probability of success than the global mapping would give.
        compiler::CompiledCircuit compiled =
            cpmFromGlobal(jobs.global, logical_qubits, dev);
        bool reused_global = true;
        if (options.recompileCpms) {
            compiler::CompiledCircuit recompiled =
                compiler::transpileCachedVia(
                    logical.withMeasurementSubset(logical_qubits), dev,
                    cpm_options, [&] {
                        if (!recompiler) {
                            recompiler.emplace(logical, dev,
                                               cpm_options);
                        }
                        return recompiler->recompile(logical_qubits);
                    });
            if (recompiled.eps > compiled.eps) {
                compiled = std::move(recompiled);
                reused_global = false;
            }
        }

        jobs.cpms.push_back({subset, std::move(logical_qubits),
                             std::move(compiled), reused_global,
                             plan.perCpmTrials[s]});
    }
    if (recompiler) {
        jobs.cpmRoutingsComputed = recompiler->routingsComputed();
        jobs.cpmRoutingsReused = recompiler->routingsReused();
    }
    return jobs;
}

ExecutionSchedule
buildSchedule(const CompiledJobs &jobs)
{
    // Group by shared gate prefix. All CPMs that kept the global
    // mapping share one group batched against the global physical
    // circuit itself, which keeps the executor's PMF-cache keys
    // identical to per-CPM execution; recompiled CPMs group together
    // whenever recompilation chose the same layout/routing.
    ExecutionSchedule schedule;
    std::unordered_map<std::uint64_t, std::size_t> group_of;
    for (std::size_t i = 0; i < jobs.cpms.size(); ++i) {
        const CpmJob &cpm = jobs.cpms[i];
        const std::uint64_t prefix_hash =
            cpm.compiled.physical.withoutMeasurements().structuralHash();
        const auto [it, inserted] =
            group_of.emplace(prefix_hash, schedule.groups.size());
        if (inserted)
            schedule.groups.push_back(
                {cpm.fromGlobal, i, prefix_hash, {}, {}});
        std::vector<int> measured = cpm.compiled.physical.measuredQubits();
        for (int q : measured)
            fatalIf(q < 0, "buildSchedule: CPM with unused classical bit");
        ExecutionSchedule::Group &group = schedule.groups[it->second];
        group.specs.push_back({std::move(measured), cpm.trials});
        group.members.push_back(i);
    }
    return schedule;
}

ExecutionResult
executeSchedule(sim::Executor &executor, const CompiledJobs &jobs,
                const ExecutionSchedule &schedule, const SubsetPlan &plan)
{
    ExecutionResult result;
    result.globalPmf =
        executor.run(jobs.global.physical, plan.globalTrials).toPmf();

    result.cpmPmfs.assign(jobs.cpms.size(), Pmf(1));
    for (const ExecutionSchedule::Group &group : schedule.groups) {
        const circuit::QuantumCircuit &base =
            group.usesGlobal ? jobs.global.physical
                             : jobs.cpms[group.baseCpm].compiled.physical;
        const std::vector<Histogram> hists =
            executor.runBatch(base, group.specs);
        for (std::size_t j = 0; j < group.members.size(); ++j)
            result.cpmPmfs[group.members[j]] = hists[j].toPmf();
    }
    return result;
}

namespace {

/** Mix two 64-bit keys into one (order-sensitive). */
inline std::uint64_t
combineKeys(std::uint64_t a, std::uint64_t b)
{
    return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

/** The base circuit a schedule group batches against. */
const circuit::QuantumCircuit &
groupBase(const MergeSource &src, const ExecutionSchedule::Group &group)
{
    return group.usesGlobal ? src.jobs->global.physical
                            : src.jobs->cpms[group.baseCpm].compiled.physical;
}

/**
 * One merged group flattened into a single runBatch call: the base
 * circuit, the shared executor, every member spec tagged with its
 * source's program and rng, and per-spec (source, CPM index) origins
 * for splitting the histograms back.
 */
struct MergedDispatch
{
    const circuit::QuantumCircuit *base = nullptr;
    sim::Executor *executor = nullptr;
    std::vector<sim::CpmSpec> specs;
    /** (source index, CPM index) per spec. */
    std::vector<std::pair<std::size_t, std::size_t>> origin;
};

MergedDispatch
buildMergedDispatch(const std::vector<MergeSource> &sources,
                    const std::vector<MergedSchedule::Member> &members)
{
    panicIf(members.empty(), "merged group without members");
    MergedDispatch dispatch;
    const MergeSource &first = sources[members.front().source];
    dispatch.base =
        &groupBase(first, first.schedule->groups[members.front().group]);
    dispatch.executor = first.executor;
    for (const MergedSchedule::Member &member : members) {
        const MergeSource &src = sources[member.source];
        panicIf(src.executor != dispatch.executor,
                "merged group spans executors");
        const ExecutionSchedule::Group &group =
            src.schedule->groups[member.group];
        for (std::size_t j = 0; j < group.specs.size(); ++j) {
            sim::CpmSpec spec = group.specs[j];
            spec.rng = src.rng;
            spec.program = static_cast<std::int64_t>(src.program);
            dispatch.specs.push_back(std::move(spec));
            dispatch.origin.push_back({member.source, group.members[j]});
        }
    }
    return dispatch;
}

} // namespace

std::size_t
MergedSchedule::crossProgramGroups() const
{
    std::size_t count = 0;
    for (const Group &group : groups) {
        for (std::size_t m = 1; m < group.members.size(); ++m) {
            if (group.members[m].source != group.members[0].source) {
                ++count;
                break;
            }
        }
    }
    return count;
}

void
mergeSourceInto(MergedSchedule &merged,
                const std::vector<MergeSource> &sources, std::size_t s)
{
    panicIf(s >= sources.size(), "mergeSourceInto: source out of range");
    const MergeSource &src = sources[s];
    panicIf(src.jobs == nullptr || src.schedule == nullptr ||
                src.plan == nullptr || src.executor == nullptr ||
                src.rng == nullptr,
            "mergeSchedules: incomplete source");
    fatalIf(!src.executor->supportsExternalSampling(),
            "mergeSchedules: executor does not support external "
            "sampling streams");
    for (std::size_t g = 0; g < src.schedule->groups.size(); ++g) {
        const ExecutionSchedule::Group &group = src.schedule->groups[g];
        // Exact-match scan: group counts stay small (a handful per
        // program), and comparing (deviceKey, prefixHash) directly
        // sidesteps combined-key collisions entirely.
        std::size_t idx = merged.groups.size();
        for (std::size_t m = 0; m < merged.groups.size(); ++m) {
            if (merged.groups[m].deviceKey == src.deviceKey &&
                merged.groups[m].prefixHash == group.prefixHash) {
                idx = m;
                break;
            }
        }
        if (idx == merged.groups.size())
            merged.groups.push_back({src.deviceKey, group.prefixHash, {}});
        merged.groups[idx].members.push_back({s, g});
    }
}

std::size_t
removeSourceFrom(MergedSchedule &merged, std::size_t s)
{
    std::size_t removed = 0;
    for (MergedSchedule::Group &group : merged.groups) {
        const std::size_t before = group.members.size();
        std::erase_if(group.members,
                      [s](const MergedSchedule::Member &member) {
                          return member.source == s;
                      });
        removed += before - group.members.size();
    }
    std::erase_if(merged.groups, [](const MergedSchedule::Group &group) {
        return group.members.empty();
    });
    return removed;
}

MergedSchedule
mergeSchedules(const std::vector<MergeSource> &sources)
{
    MergedSchedule merged;
    for (std::size_t s = 0; s < sources.size(); ++s)
        mergeSourceInto(merged, sources, s);
    return merged;
}

std::vector<ExecutionResult>
executeMergedSchedules(const std::vector<MergeSource> &sources,
                       const MergedSchedule &merged,
                       MergedExecutionStats *stats)
{
    // The detail string is the enabled-source count, so a fault spec
    // can poison multi-program windows ("merge.execute@2") while
    // letting the quarantined single-source retries through.
    std::size_t enabled_sources = 0;
    for (const MergeSource &source : sources) {
        if (source.enabled)
            ++enabled_sources;
    }
    injectFaultPoint("merge.execute", std::to_string(enabled_sources));
    {
        static log::Logger &lg = log::logger("core.pipeline");
        JIGSAW_LOG_DEBUG(lg, "executing merged schedule",
                         log::kv("sources", enabled_sources),
                         log::kv("groups", merged.groups.size()));
    }
    std::vector<ExecutionResult> results(sources.size());
    for (const MergedSchedule::Group &group : merged.groups) {
        for (const MergedSchedule::Member &member : group.members) {
            panicIf(!sources[member.source].enabled,
                    "executeMergedSchedules: merged group references a "
                    "disabled source (removeSourceFrom not called?)");
        }
    }

    // Warm-up: prepare each distinct global circuit and each merged
    // group's shared evolution concurrently. All of it is
    // deterministic, shot-independent cache population; no randomness
    // is consumed, so the ordered sampling pass below stays exact.
    // The pooled-global pass below relies on this: preparing the
    // global circuit populates the executor's run()-keyed cache entry
    // before any batched lookup could build a marginal-derived one.
    {
        TaskGroup warm;
        std::unordered_map<std::uint64_t, char> seen;
        for (const MergeSource &src : sources) {
            if (!src.enabled)
                continue;
            const std::uint64_t key = combineKeys(
                src.deviceKey,
                src.jobs->global.physical.structuralHash());
            if (!seen.emplace(key, 1).second)
                continue;
            warm.run([source = &src] {
                source->executor->prepare(source->jobs->global.physical);
            });
        }
        for (const MergedSchedule::Group &group : merged.groups) {
            warm.run([&sources, members = &group.members] {
                const MergedDispatch dispatch =
                    buildMergedDispatch(sources, *members);
                dispatch.executor->prepareBatch(*dispatch.base,
                                                dispatch.specs);
            });
        }
        warm.wait();
    }

    // Sampling pass 1: globals, in source order. Every draw comes
    // from the source's private stream, so cross-source order is
    // immaterial; within a source this is its first sampling, exactly
    // as in executeSchedule. Sources sharing a (device, global
    // circuit) pair pool their sampling into one multi-program
    // runBatch — but only when the global's measurements are terminal
    // in classical-bit order, which makes the batch spec's cache key
    // (measurementSubsetHash) equal run()'s (structuralHash): the
    // warmed run()-style entry then serves the batch, so the pooled
    // draws are bit-for-bit the draws run() would make. Anything else
    // falls back to run() per source.
    {
        struct GlobalPool
        {
            std::vector<std::size_t> members; ///< Source indices, order.
        };
        std::vector<GlobalPool> pools;
        std::unordered_map<std::uint64_t, std::size_t> pool_of;
        for (std::size_t s = 0; s < sources.size(); ++s) {
            if (!sources[s].enabled)
                continue;
            const std::uint64_t key = combineKeys(
                sources[s].deviceKey,
                sources[s].jobs->global.physical.structuralHash());
            const auto [it, inserted] = pool_of.emplace(key, pools.size());
            if (inserted)
                pools.push_back({});
            pools[it->second].members.push_back(s);
        }
        const auto runAlone = [&results, &sources](std::size_t s) {
            const MergeSource &src = sources[s];
            results[s].globalPmf =
                src.executor
                    ->run(src.jobs->global.physical,
                          src.plan->globalTrials, *src.rng)
                    .toPmf();
        };
        for (const GlobalPool &pool : pools) {
            const MergeSource &first = sources[pool.members.front()];
            const circuit::QuantumCircuit &global =
                first.jobs->global.physical;
            std::vector<int> measured;
            bool poolable = pool.members.size() >= 2;
            // The pool key is a combined hash; re-check the actual
            // (executor, device, circuit) identity so a collision —
            // or hand-built sources mixing executors — degrades to
            // the per-source path instead of batching foreign specs.
            for (std::size_t s : pool.members) {
                poolable =
                    poolable && sources[s].executor == first.executor &&
                    sources[s].deviceKey == first.deviceKey &&
                    sources[s].jobs->global.physical.structuralHash() ==
                        global.structuralHash();
            }
            if (poolable) {
                measured = global.measuredQubits();
                for (int q : measured)
                    poolable = poolable && q >= 0;
                poolable = poolable && !measured.empty() &&
                           global.measurementSubsetHash(measured) ==
                               global.structuralHash();
            }
            if (!poolable) {
                for (std::size_t s : pool.members)
                    runAlone(s);
                continue;
            }
            std::vector<sim::CpmSpec> specs;
            specs.reserve(pool.members.size());
            for (std::size_t s : pool.members) {
                specs.push_back(
                    {measured, sources[s].plan->globalTrials,
                     sources[s].rng,
                     static_cast<std::int64_t>(sources[s].program)});
            }
            const std::vector<Histogram> hists =
                first.executor->runBatch(global, specs);
            for (std::size_t k = 0; k < pool.members.size(); ++k)
                results[pool.members[k]].globalPmf = hists[k].toPmf();
            if (stats != nullptr) {
                ++stats->pooledGlobalBatches;
                stats->pooledGlobalPrograms += pool.members.size();
            }
        }
    }
    for (std::size_t s = 0; s < sources.size(); ++s) {
        if (sources[s].enabled)
            results[s].cpmPmfs.assign(sources[s].jobs->cpms.size(),
                                      Pmf(1));
    }

    // Sampling pass 2: merged groups, each one runBatch, in an order
    // that preserves every source's own group order (a source's draws
    // must land in its stream exactly as executeSchedule would issue
    // them). Greedy sweeps dispatch any group whose members are all
    // their source's next unexecuted group; when sources disagree on
    // prefix order (possible with differing subset options), a sweep
    // can stall — then the first group with ready members dispatches
    // just those, preserving per-source order at the cost of one
    // extra batch.
    std::vector<std::size_t> next(sources.size(), 0);
    std::vector<std::vector<MergedSchedule::Member>> pending;
    pending.reserve(merged.groups.size());
    std::size_t remaining = 0;
    for (const MergedSchedule::Group &group : merged.groups) {
        pending.push_back(group.members);
        remaining += group.members.size();
    }
    const auto dispatchMembers =
        [&](const std::vector<MergedSchedule::Member> &members) {
            const MergedDispatch dispatch =
                buildMergedDispatch(sources, members);
            const std::vector<Histogram> hists =
                dispatch.executor->runBatch(*dispatch.base,
                                            dispatch.specs);
            for (std::size_t k = 0; k < hists.size(); ++k) {
                results[dispatch.origin[k].first]
                    .cpmPmfs[dispatch.origin[k].second] =
                    hists[k].toPmf();
            }
            for (const MergedSchedule::Member &member : members)
                next[member.source] = member.group + 1;
            remaining -= members.size();
        };
    const auto isReady = [&](const MergedSchedule::Member &member) {
        return next[member.source] == member.group;
    };
    while (remaining > 0) {
        bool progress = false;
        for (std::vector<MergedSchedule::Member> &members : pending) {
            if (members.empty())
                continue;
            if (!std::all_of(members.begin(), members.end(), isReady))
                continue;
            dispatchMembers(members);
            members.clear();
            progress = true;
        }
        if (progress)
            continue;
        // Order conflict: dispatch the ready members of the first
        // blocked group. At least one pending member is ready (every
        // source's next group is pending somewhere).
        for (std::vector<MergedSchedule::Member> &members : pending) {
            std::vector<MergedSchedule::Member> ready;
            for (const MergedSchedule::Member &member : members) {
                if (isReady(member))
                    ready.push_back(member);
            }
            if (ready.empty())
                continue;
            std::erase_if(members, [&](const auto &member) {
                return isReady(member);
            });
            dispatchMembers(ready);
            progress = true;
            break;
        }
        panicIf(!progress, "executeMergedSchedules: dispatch stalled");
    }
    return results;
}

ReconstructionInput
buildReconstructionInput(const CompiledJobs &jobs,
                         const ExecutionResult &result)
{
    panicIf(result.cpmPmfs.size() != jobs.cpms.size(),
            "buildReconstructionInput: execution/compilation mismatch");
    ReconstructionInput input;
    input.globalPmf = result.globalPmf;
    input.marginals.reserve(jobs.cpms.size());
    for (std::size_t i = 0; i < jobs.cpms.size(); ++i)
        input.marginals.push_back(
            {result.cpmPmfs[i], jobs.cpms[i].subset});
    return input;
}

Pmf
reconstructOutput(const ReconstructionInput &input,
                  const ReconstructionOptions &options)
{
    injectFaultPoint("stage.reconstruct");
    // multiLayerReconstruct applies marginals grouped by size, top
    // down; with a single size it reduces to plain reconstruction.
    return multiLayerReconstruct(input.globalPmf, input.marginals,
                                 options);
}

} // namespace core
} // namespace jigsaw
