/**
 * @file
 * Bayesian Reconstruction (paper Algorithm 1).
 *
 * The global PMF acts as the prior; each marginal (the local PMF of a
 * CPM together with the bit positions it measured) supplies more
 * trustworthy evidence about its subset of bits. One update pass
 * rescales, for every marginal outcome By with probability pry, the
 * matching global outcomes in proportion to their prior mass times
 * pry / (1 - pry). The posteriors of all marginals are then summed
 * into the prior and normalized; passes repeat until the Hellinger
 * distance between successive outputs converges.
 */
#ifndef JIGSAW_CORE_BAYESIAN_H
#define JIGSAW_CORE_BAYESIAN_H

#include <vector>

#include "common/histogram.h"
#include "common/simd.h"
#include "core/subsets.h"

namespace jigsaw {
namespace core {

/** A CPM's evidence: its local PMF over the measured bit positions. */
struct Marginal
{
    Pmf local;     ///< PMF over the subset (bit j = qubits[j]).
    Subset qubits; ///< Measured bit positions, ascending.
};

/** Order in which multi-size marginal layers update the prior. */
enum class LayerOrder
{
    /** Paper default (Section 4.4.2): largest subset size first, so
     *  the most-correlated evidence shapes the PMF before the
     *  highest-fidelity small subsets refine it. */
    TopDown,
    /** Smallest subset size first; provided for the ablation study. */
    BottomUp,
};

/**
 * How one reconstruction round is split across the thread pool.
 *
 * Both paths are deterministic for a fixed input whatever the thread
 * count (shard boundaries depend only on the support size, and every
 * floating-point reduction runs in fixed shard order), but the two
 * paths group their sums differently, so they agree only to golden
 * equivalence (~1e-12), not bitwise.
 */
enum class ShardMode
{
    /** Shard the flat outcome vector on large supports (the marginal
     *  count no longer bounds scaling there), per-marginal otherwise. */
    Auto,
    Always, ///< Force outcome sharding (tests, large-support benches).
    Never,  ///< Force the per-marginal path.
};

/** Convergence controls for the iterated reconstruction. */
struct ReconstructionOptions
{
    int maxRounds = 16;       ///< Hard cap on update rounds.
    double tolerance = 1e-4;  ///< Hellinger-distance convergence bound.
    LayerOrder layerOrder = LayerOrder::TopDown; ///< JigSaw-M ordering.
    ShardMode shardMode = ShardMode::Auto; ///< Round parallelization.
    /**
     * Local-PMF mass at or below this is treated as unobserved — the
     * matching global outcomes keep their prior probability, exactly
     * as Algorithm 1 handles subset values absent from the CPM. The
     * default matches Pmf::prune's sparsity cutoff so evidence that
     * pruning would have dropped cannot skew an update.
     */
    double evidenceThreshold = 1e-14;
    /**
     * Kernel table the round loops dispatch through; null resolves to
     * simd::activeKernels(). Tests and benches override this to pin a
     * specific backend (e.g. scalar-vs-active comparisons on identical
     * inputs). Per-element outputs are bitwise-identical across
     * backends; only reduction groupings differ (~1 ulp per sum).
     */
    const simd::KernelTable *kernels = nullptr;
};

/**
 * One Bayesian_Update call from Algorithm 1: returns the (normalized)
 * posterior of @p prior given the single marginal @p m. Subset keys
 * whose local probability is at or below @p evidence_threshold
 * contribute no evidence (their outcomes keep the prior value).
 */
Pmf bayesianUpdate(const Pmf &prior, const Marginal &m,
                   double evidence_threshold = 1e-14);

/**
 * Full reconstruction: iterated rounds of updating @p global with all
 * of @p marginals until the output stops moving. The result keeps the
 * support of @p global (only observed outcomes gain probability,
 * which is what bounds the complexity; Section 7.1).
 *
 * Implementation note: because the support is invariant across
 * rounds, the subset keys and bucket assignments of every marginal
 * are precomputed once into flat indexed arrays; each round then
 * iterates dense vectors (no per-round hash-map rebuilds). Rounds
 * parallelize per ShardMode: one posterior per thread (per-marginal),
 * or — on large supports — the flat outcome vector is split into
 * fixed-size shards, each thread accumulating per-shard partial
 * bucket masses that are reduced in shard order, so the result is
 * identical however many threads ran.
 */
Pmf bayesianReconstruct(const Pmf &global,
                        const std::vector<Marginal> &marginals,
                        const ReconstructionOptions &options = {});

/**
 * Multi-layer reconstruction for JigSaw-M (Section 4.4.2): marginals
 * are grouped by subset size and applied top-down, from the largest
 * size (most correlation, applied first so it is maximally preserved)
 * to the smallest (highest fidelity, applied last).
 */
Pmf multiLayerReconstruct(const Pmf &global,
                          const std::vector<Marginal> &marginals,
                          const ReconstructionOptions &options = {});

} // namespace core
} // namespace jigsaw

#endif // JIGSAW_CORE_BAYESIAN_H
