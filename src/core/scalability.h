/**
 * @file
 * Analytical scalability model of the reconstruction step (paper
 * Section 7, Equation 5 and the operation-count analysis).
 *
 * JigSaw stores only the non-zero PMF entries actually observed, so
 * memory and time are bounded by the trial count rather than by 2^n:
 *  - Memory = {n + 8(2 + N)} * eps * T  +  sum_s L_s (s + 8) N bytes,
 *    with L_s = min(2^s, delta * T);
 *  - Operations = 4 * eps * S * N * T.
 */
#ifndef JIGSAW_CORE_SCALABILITY_H
#define JIGSAW_CORE_SCALABILITY_H

#include <cstdint>
#include <vector>

namespace jigsaw {
namespace core {

/** Inputs of the analytical model (paper Table 7 notation). */
struct ScalabilityConfig
{
    int nQubits = 0;              ///< n: program qubits.
    int numCpms = 0;              ///< N: CPMs per subset size.
    std::vector<int> subsetSizes; ///< sizes used; S = sizes.size().
    double epsilon = 0.05;        ///< Global-PMF entries / trials.
    double delta = 0.05;          ///< Large local-PMF entries / trials.
    std::uint64_t trials = 0;     ///< T: trials per mode.
};

/** Reconstruction memory requirement in bytes (Eq. 5). */
double reconstructionMemoryBytes(const ScalabilityConfig &config);

/** Reconstruction operation count (4 * eps * S * N * T). */
double reconstructionOperations(const ScalabilityConfig &config);

} // namespace core
} // namespace jigsaw

#endif // JIGSAW_CORE_SCALABILITY_H
