/**
 * @file
 * Naive reference Bayesian reconstruction.
 *
 * The original per-round implementation: every round re-buckets the
 * prior into fresh unordered_maps via bayesianUpdate and copies whole
 * Pmfs around. Kept as an executable specification — the equivalence
 * tests assert the indexed bayesianReconstruct matches it, and
 * bench/perf_reconstruction times it as the "before" side of
 * BENCH_perf.json. Deliberately slow; do not optimize.
 */
#ifndef JIGSAW_CORE_REFERENCE_BAYESIAN_H
#define JIGSAW_CORE_REFERENCE_BAYESIAN_H

#include <vector>

#include "core/bayesian.h"

namespace jigsaw {
namespace core {

/** Naive counterpart of bayesianReconstruct (same update math). */
Pmf referenceReconstruct(const Pmf &global,
                         const std::vector<Marginal> &marginals,
                         const ReconstructionOptions &options = {});

/** Naive counterpart of multiLayerReconstruct. */
Pmf referenceMultiLayerReconstruct(const Pmf &global,
                                   const std::vector<Marginal> &marginals,
                                   const ReconstructionOptions &options = {});

} // namespace core
} // namespace jigsaw

#endif // JIGSAW_CORE_REFERENCE_BAYESIAN_H
