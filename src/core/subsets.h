/**
 * @file
 * Qubit-subset generators for Circuits with Partial Measurements.
 *
 * Subsets are expressed over the *measured bit positions* of the
 * program (classical bits 0..n-1), ascending. The paper's default is
 * the sliding-window method, which yields exactly n unique subsets
 * for an n-qubit program (Section 4.2.1); random generators support
 * the sensitivity studies of Section 6.5.
 */
#ifndef JIGSAW_CORE_SUBSETS_H
#define JIGSAW_CORE_SUBSETS_H

#include <vector>

#include "common/rng.h"

namespace jigsaw {
namespace core {

/** A subset of measured bit positions, sorted ascending. */
using Subset = std::vector<int>;

/**
 * Validate explicit (user-supplied) subsets over @p n_bits measured
 * bit positions: every subset must be non-empty, contain only bits in
 * [0, n_bits), and have no duplicate bit positions. The subset list
 * itself must be non-empty. Throws std::invalid_argument with the
 * offending subset index otherwise.
 */
void validateSubsets(int n_bits, const std::vector<Subset> &subsets);

/**
 * Sliding-window subsets: for n = 4, size = 2 this yields (0,1),
 * (1,2), (2,3), (0,3) — one window per qubit, wrapping around.
 */
std::vector<Subset> slidingWindowSubsets(int n_qubits, int subset_size);

/**
 * @p count distinct random subsets of the given size, uniformly from
 * the C(n, size) possibilities (count is capped at that number).
 */
std::vector<Subset> randomSubsets(int n_qubits, int subset_size, int count,
                                  Rng &rng);

/**
 * Random subsets of the given size such that every qubit appears in
 * at least one subset, using n subsets total (the selection-method
 * study of Figure 9b).
 */
std::vector<Subset> coveringRandomSubsets(int n_qubits, int subset_size,
                                          Rng &rng);

} // namespace core
} // namespace jigsaw

#endif // JIGSAW_CORE_SUBSETS_H
