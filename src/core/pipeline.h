/**
 * @file
 * The JigSaw run decomposed into explicit stages with typed artifacts.
 *
 * The paper's flow (Section 4) is a pipeline — subset planning, CPM
 * compilation, execution, Bayesian reconstruction — and each stage
 * here is an independently callable function producing an artifact the
 * next stage consumes:
 *
 *     planSubsets        -> SubsetPlan        (what to measure, budget)
 *     compileJobs        -> CompiledJobs      (global + CPM circuits)
 *     buildSchedule      -> ExecutionSchedule (prefix-grouped batches)
 *     executeSchedule    -> ExecutionResult   (global + CPM PMFs)
 *     buildReconstructionInput / reconstructOutput -> output PMF
 *
 * core::JigsawSession drives the stages for one program (resumable,
 * artifacts inspectable for benches and ablations); runJigsaw() is a
 * thin wrapper over a session; core::JigsawService schedules many
 * sessions concurrently. Keeping the stages free functions means each
 * is independently swappable — a different subset planner or a
 * sharded reconstruction backend plugs in without touching the rest.
 */
#ifndef JIGSAW_CORE_PIPELINE_H
#define JIGSAW_CORE_PIPELINE_H

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "compiler/transpiler.h"
#include "core/jigsaw.h"
#include "device/device_model.h"
#include "sim/simulators.h"

namespace jigsaw {
namespace core {

/**
 * Stage 1 artifact: the run's subsets and its trial budget split.
 * Pure planning — no compilation or execution state.
 */
struct SubsetPlan
{
    int nMeasured = 0;              ///< Measured bit positions (clbits).
    std::uint64_t totalTrials = 0;  ///< The full budget.
    std::uint64_t globalTrials = 0; ///< Trials spent in global mode.
    std::uint64_t subsetTrials = 0; ///< Sum of perCpmTrials.
    std::vector<Subset> subsets;    ///< One subset per CPM.
    /** Trials per CPM (parallel to subsets; remainder-adjusted, >=1). */
    std::vector<std::uint64_t> perCpmTrials;
};

/**
 * Plan the subsets and trial split for @p logical under @p options.
 * Validates the budget, the global fraction, and — for
 * options.customSubsets — that every subset is non-empty with unique,
 * in-range bit positions (throws std::invalid_argument otherwise).
 */
SubsetPlan planSubsets(const circuit::QuantumCircuit &logical,
                       std::uint64_t total_trials,
                       const JigsawOptions &options);

/** Stage 2 artifact: one compiled CPM with its trial share. */
struct CpmJob
{
    Subset subset;                  ///< Measured bit positions.
    std::vector<int> logicalQubits; ///< Logical qubit per subset bit.
    compiler::CompiledCircuit compiled; ///< The CPM's compilation.
    bool fromGlobal = false; ///< Kept the global mapping (no recompile).
    std::uint64_t trials = 0;
};

/** Stage 2 artifact: the global compilation plus every CPM job. */
struct CompiledJobs
{
    compiler::CompiledCircuit global;
    std::vector<CpmJob> cpms; ///< Parallel to SubsetPlan::subsets.
    /** @name Batched-recompilation counters (this compile stage).
     *  @{ */
    std::uint64_t cpmRoutingsComputed = 0; ///< Distinct layouts routed.
    std::uint64_t cpmRoutingsReused = 0;   ///< Candidates off the memo.
    /** @} */
};

/**
 * Compile the global circuit (process-wide transpile memo) and every
 * CPM of @p plan. CPMs keep the global mapping (sharing its routed
 * prefix and gate-success probability) unless recompilation finds a
 * strictly better EPS; recompilation runs through the batched
 * CpmRecompiler, which routes each distinct placement once per
 * logical circuit, and lands in the same process-wide memo as
 * transpileCached so repeated runs skip it entirely.
 */
CompiledJobs compileJobs(const circuit::QuantumCircuit &logical,
                         const device::DeviceModel &dev,
                         const SubsetPlan &plan,
                         const JigsawOptions &options);

/**
 * Stage 3 artifact: CPMs grouped by shared gate prefix, so a batching
 * executor evolves each prefix once and serves every member's
 * marginal off the single final state.
 */
struct ExecutionSchedule
{
    struct Group
    {
        /** Batch against the global physical circuit (all CPMs that
         *  kept the global mapping — keeps the executor's PMF-cache
         *  keys identical to per-CPM execution). */
        bool usesGlobal = false;
        /** When !usesGlobal: CPM index whose compilation is the base. */
        std::size_t baseCpm = 0;
        /**
         * Structural hash of the shared gate prefix (the base
         * circuit without its measurements) — the provenance tag the
         * cross-program merge pass keys on: two groups from different
         * programs with equal prefix hashes (on equal devices) batch
         * against one shared evolution.
         */
        std::uint64_t prefixHash = 0;
        std::vector<sim::CpmSpec> specs; ///< Parallel to members.
        std::vector<std::size_t> members; ///< CPM indices, plan order.
    };
    std::vector<Group> groups;
};

/** Group @p jobs by shared gate prefix (structural hash, measureless). */
ExecutionSchedule buildSchedule(const CompiledJobs &jobs);

/** Stage 3 output: every observed PMF. */
struct ExecutionResult
{
    Pmf globalPmf = Pmf(1); // placeholder until executed
    std::vector<Pmf> cpmPmfs; ///< Parallel to CompiledJobs::cpms.
};

/**
 * Run global mode then every batch group of @p schedule against
 * @p executor. Dispatch order (global first, groups in first-member
 * order) is fixed so a seeded executor's draw stream — and therefore
 * the whole run — is deterministic.
 */
ExecutionResult executeSchedule(sim::Executor &executor,
                                const CompiledJobs &jobs,
                                const ExecutionSchedule &schedule,
                                const SubsetPlan &plan);

/**
 * One program's artifacts offered to the cross-program merge pass.
 * The executor is shared by every source with the same deviceKey and
 * must support external sampling; the rng is this program's private
 * draw stream, seeded exactly like the private executor a sequential
 * run would use, so merged results stay bitwise-identical to
 * sequential runJigsaw.
 *
 * Distribution boundary: executor and rng are the only fields bound
 * to the local process — everything else is (a pointer to) immutable
 * compiled data. The worker tier (core/transport.h) exploits this by
 * shipping sources UNBOUND (both null) and having the serving worker
 * late-bind its own executor plus a fresh Rng(executorSeed); a wire
 * transport would serialize the artifacts and do the same on the far
 * side.
 */
struct MergeSource
{
    std::size_t program = 0; ///< Caller-assigned provenance tag.
    const CompiledJobs *jobs = nullptr;
    const ExecutionSchedule *schedule = nullptr;
    const SubsetPlan *plan = nullptr;
    std::uint64_t deviceKey = 0; ///< device::DeviceModel::fingerprint().
    sim::Executor *executor = nullptr; ///< Shared per deviceKey.
    Rng *rng = nullptr;                ///< Per-program stream.
    /**
     * False marks a retired slot: a source that joined an incremental
     * merge and was then withdrawn (a cancelled streaming job). Its
     * members must already be gone from the MergedSchedule (see
     * removeSourceFrom); executeMergedSchedules skips it entirely,
     * keeping the indices of the surviving sources stable.
     */
    bool enabled = true;
};

/**
 * Schedule groups from all in-flight sources merged by
 * (deviceKey, shared CPM gate prefix): each merged group is executed
 * as one multi-program Executor::runBatch against the shared
 * executor, so a prefix shared by N programs is evolved once instead
 * of N times. Within one source, prefix hashes are unique (that is
 * what buildSchedule groups by), so a merged group holds at most one
 * group per source.
 */
struct MergedSchedule
{
    /** One source group inside a merged group. */
    struct Member
    {
        std::size_t source = 0; ///< Index into the sources vector.
        std::size_t group = 0;  ///< Index into that source's schedule.
    };
    struct Group
    {
        std::uint64_t deviceKey = 0;
        std::uint64_t prefixHash = 0;
        std::vector<Member> members; ///< In source-index order.
    };
    std::vector<Group> groups;

    /** Merged groups with members from more than one source. */
    std::size_t crossProgramGroups() const;
};

/** Merge every source's schedule by (deviceKey, prefix hash). */
MergedSchedule mergeSchedules(const std::vector<MergeSource> &sources);

/**
 * Incrementally add source @p s (an index into @p sources) to
 * @p merged, using the same (deviceKey, prefix hash) keying as
 * mergeSchedules — which is itself just this function folded over
 * every source. The streaming scheduler maintains one MergedSchedule
 * per open merge window with this, folding each job in as it joins
 * instead of re-merging the whole pending set per arrival.
 */
void mergeSourceInto(MergedSchedule &merged,
                     const std::vector<MergeSource> &sources,
                     std::size_t s);

/**
 * Withdraw source @p s from @p merged: drop every member referencing
 * it and any group left empty (a streaming job cancelled while its
 * merge window was still open). Returns the number of members
 * removed. The caller should also clear MergeSource::enabled on the
 * slot so a later executeMergedSchedules skips its global pass.
 */
std::size_t removeSourceFrom(MergedSchedule &merged, std::size_t s);

/** Counters reported by executeMergedSchedules. */
struct MergedExecutionStats
{
    /** Multi-program global runBatch calls issued (pooled globals). */
    std::size_t pooledGlobalBatches = 0;
    /** Sources whose global sampling rode a pooled batch. */
    std::size_t pooledGlobalPrograms = 0;
};

/**
 * Execute every enabled source's schedule through @p merged and split
 * the results back per source (parallel to @p sources; disabled slots
 * keep a default-constructed result).
 *
 * Two phases: a warm-up pass prepares each merged group's shared
 * evolution (and each distinct global circuit) concurrently over the
 * thread pool — deterministic work, no randomness — then globals and
 * merged groups are sampled in an order that preserves every source's
 * sequential dispatch order (global first, groups in schedule order),
 * each spec drawing from its own source's rng. Sources sharing a
 * (device, global circuit) pair have their global sampling pooled
 * into one multi-program runBatch when the batch's cache key provably
 * equals run()'s (terminal measurements in classical-bit order);
 * otherwise each samples through run() as before. Because each
 * source's draws come from its private stream in its sequential
 * order, and every cached entry is a deterministic function of
 * (circuit, device), the per-source results are bitwise-identical to
 * running executeSchedule against a private executor seeded the same
 * way.
 */
std::vector<ExecutionResult>
executeMergedSchedules(const std::vector<MergeSource> &sources,
                       const MergedSchedule &merged,
                       MergedExecutionStats *stats = nullptr);

/** Stage 4 input: the prior and the evidence, nothing else. */
struct ReconstructionInput
{
    Pmf globalPmf = Pmf(1); // placeholder until executed
    std::vector<Marginal> marginals;
};

/** Pair each CPM's observed PMF with its subset. */
ReconstructionInput buildReconstructionInput(const CompiledJobs &jobs,
                                             const ExecutionResult &result);

/** Multi-layer Bayesian reconstruction of the output PMF. */
Pmf reconstructOutput(const ReconstructionInput &input,
                      const ReconstructionOptions &options);

} // namespace core
} // namespace jigsaw

#endif // JIGSAW_CORE_PIPELINE_H
