#include "core/service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <optional>
#include <unordered_map>

#include "common/error.h"
#include "common/parallel.h"
#include "common/simd.h"
#include "compiler/transpiler.h"
#include "core/scheduler.h"
#include "obs/exposition.h"
#include "sim/simulators.h"

namespace jigsaw {
namespace core {

namespace {

using Clock = std::chrono::steady_clock;

/** The executor a legacy-path program runs against: its own, or a
 *  fresh seeded default — the one definition shared by the service
 *  and the sequential reference. */
std::shared_ptr<sim::Executor>
programExecutor(const ServiceProgram &program)
{
    if (program.executor)
        return program.executor;
    return std::make_shared<sim::NoisySimulator>(
        program.device,
        sim::NoisySimulatorOptions{.seed = program.executorSeed});
}

/** Merge every class histogram of @p byClass and take its quantile. */
double
mergedQuantile(
    const std::array<obs::HistogramData, kPriorityClasses> &byClass,
    double q)
{
    obs::HistogramData merged;
    for (const obs::HistogramData &hist : byClass)
        merged.merge(hist);
    return merged.quantile(q);
}

} // namespace

double
percentileNearestRank(std::vector<double> samples, double q)
{
    // Degenerate sets first: percentiles of nothing are 0 (a stats
    // report over an idle service must not fault), and with a single
    // sample every percentile IS that sample — no rank arithmetic
    // whose rounding could misindex.
    if (samples.empty())
        return 0.0;
    if (samples.size() == 1)
        return samples.front();
    // A non-finite q (NaN propagated from a ratio of empty counters)
    // must not reach the size_t cast below: NaN comparisons are all
    // false, so it falls through the clamps as-is otherwise.
    if (!(q >= 0.0))
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    std::sort(samples.begin(), samples.end());
    const std::size_t rank = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(q * static_cast<double>(samples.size()))));
    return samples[std::min(rank, samples.size()) - 1];
}

double
ServiceStats::latencyPercentileMs(double q) const
{
    return percentileNearestRank(latenciesMs, q);
}

double
StreamStats::latencyPercentileMs(double q) const
{
    return mergedQuantile(latencyByClass, q);
}

double
StreamStats::latencyPercentileMs(Priority cls, double q) const
{
    return latencyByClass[static_cast<std::size_t>(cls)].quantile(q);
}

double
StreamStats::queueWaitPercentileMs(Priority cls, double q) const
{
    return queueWaitByClass[static_cast<std::size_t>(cls)].quantile(q);
}

double
StreamStats::executePercentileMs(Priority cls, double q) const
{
    return executeByClass[static_cast<std::size_t>(cls)].quantile(q);
}

std::vector<JigsawResult>
runProgramsSequentially(const std::vector<ServiceProgram> &programs)
{
    std::vector<JigsawResult> results;
    results.reserve(programs.size());
    for (const ServiceProgram &program : programs) {
        const std::shared_ptr<sim::Executor> executor =
            programExecutor(program);
        results.push_back(runJigsaw(program.circuit, program.device,
                                    *executor, program.trials,
                                    program.options));
    }
    return results;
}

JigsawService::JigsawService(ServiceOptions options)
    : options_(std::move(options))
{
}

JigsawService::~JigsawService() = default; // scheduler's dtor drains

StreamingScheduler &
JigsawService::scheduler()
{
    std::lock_guard<std::mutex> lock(schedulerMutex_);
    if (!scheduler_)
        scheduler_ = std::make_unique<StreamingScheduler>(options_.stream);
    return *scheduler_;
}

SubmitResult
JigsawService::submit(ServiceProgram program, Priority priority)
{
    return scheduler().submit(std::move(program), priority);
}

ParametricHandle
JigsawService::compileParametric(ServiceProgram prototype)
{
    return scheduler().compileParametric(std::move(prototype));
}

SubmitResult
JigsawService::submitIteration(ParametricHandle handle,
                               const std::vector<double> &angles,
                               Priority priority)
{
    return scheduler().submitIteration(handle, angles, priority);
}

std::optional<JobStatus>
JigsawService::poll(JobHandle handle) const
{
    std::lock_guard<std::mutex> lock(schedulerMutex_);
    if (!scheduler_)
        return std::nullopt;
    return scheduler_->poll(handle);
}

JigsawResult
JigsawService::wait(JobHandle handle)
{
    {
        // No scheduler means no job was ever submitted: reject the
        // handle without spinning up a dispatcher thread just to ask.
        std::lock_guard<std::mutex> lock(schedulerMutex_);
        fatalIf(scheduler_ == nullptr,
                "JigsawService: wait on unknown job handle");
    }
    return scheduler().wait(handle);
}

bool
JigsawService::cancel(JobHandle handle)
{
    std::lock_guard<std::mutex> lock(schedulerMutex_);
    if (!scheduler_)
        return false;
    return scheduler_->cancel(handle);
}

bool
JigsawService::release(JobHandle handle)
{
    std::lock_guard<std::mutex> lock(schedulerMutex_);
    if (!scheduler_)
        return false;
    return scheduler_->release(handle);
}

void
JigsawService::drain()
{
    StreamingScheduler *scheduler = nullptr;
    {
        std::lock_guard<std::mutex> lock(schedulerMutex_);
        scheduler = scheduler_.get();
    }
    if (scheduler != nullptr)
        scheduler->drain();
}

StreamStats
JigsawService::streamStats() const
{
    std::lock_guard<std::mutex> lock(schedulerMutex_);
    if (!scheduler_)
        return StreamStats{};
    return scheduler_->stats();
}

std::string
JigsawService::metricsText() const
{
    // The registry is process-wide: a live scheduler's collector (and
    // every other scheduler's) runs inside the render, so this is the
    // same body the HTTP endpoint serves. Deliberately does NOT
    // lazy-create the scheduler — metrics of an idle service are just
    // the process-wide families.
    return obs::renderProcessMetrics();
}

std::vector<JigsawResult>
JigsawService::run(const std::vector<ServiceProgram> &programs)
{
    const auto start = Clock::now();
    const auto msSinceStart = [&start] {
        return std::chrono::duration<double, std::milli>(Clock::now() -
                                                         start)
            .count();
    };
    stats_ = ServiceStats{};
    // Transpile counters are process-wide; the run's share is the
    // delta. Executor evolution counters are harvested per executor
    // the run builds (legacy tasks aggregate into these before their
    // private executor dies).
    const std::uint64_t transpile_hits0 = compiler::transpileCacheHits();
    const std::uint64_t transpile_misses0 =
        compiler::transpileCacheMisses();
    const std::uint64_t transpile_rebinds0 =
        compiler::transpileSkeletonRebinds();
    // SIMD dispatch counters are process-wide like the transpile memo:
    // the run's share is the delta, never a per-executor sum.
    const simd::DispatchCounters simd0 = simd::dispatchCounters();
    std::atomic<std::uint64_t> pmf_hits{0};
    std::atomic<std::uint64_t> pmf_misses{0};
    std::atomic<std::uint64_t> prefix_hits{0};
    std::atomic<std::uint64_t> prefix_misses{0};
    const auto harvest = [&](const sim::Executor &executor) {
        const sim::ExecutorCounters counters = executor.counters();
        pmf_hits += counters.pmfHits;
        pmf_misses += counters.pmfMisses;
        prefix_hits += counters.prefixStateHits;
        prefix_misses += counters.prefixStateMisses;
    };

    const std::size_t n = programs.size();
    std::vector<std::optional<JigsawResult>> slots(n);
    std::vector<double> latencies(n, 0.0);
    std::vector<std::exception_ptr> errors(n);

    // Partition: programs the service builds executors for are
    // eligible for the merge path. Under Auto only (circuit, device)
    // pairs shared by two or more of them merge: those are the
    // programs whose gate prefixes will actually dedupe, while a
    // program sharing nothing keeps the legacy path's session-level
    // sampling concurrency (merged sampling is ordered).
    std::vector<char> on_merged_path(n, 0);
    std::vector<std::uint64_t> device_keys(n, 0);
    if (options_.mergePolicy != MergePolicy::Never) {
        std::unordered_map<std::uint64_t, std::size_t> pair_count;
        std::vector<std::uint64_t> pair_keys(n, 0);
        for (std::size_t i = 0; i < n; ++i) {
            if (programs[i].executor)
                continue;
            device_keys[i] = programs[i].device.fingerprint();
            // Skeleton-keyed pairing: parametric iterations of one
            // program (same gates, fresh angles) merge — their
            // compiled prefixes differ only in diagonal angles the
            // shared executor's split-prefix cache deduplicates.
            pair_keys[i] = device_keys[i] ^
                           (programs[i].circuit.skeletonHash() *
                            0x9e3779b97f4a7c15ULL);
            ++pair_count[pair_keys[i]];
        }
        for (std::size_t i = 0; i < n; ++i) {
            if (programs[i].executor)
                continue;
            if (options_.mergePolicy == MergePolicy::Always ||
                pair_count[pair_keys[i]] >= 2) {
                on_merged_path[i] = 1;
            }
        }
    }

    // Legacy path: one independent session per program, concurrent.
    TaskGroup legacy;
    for (std::size_t i = 0; i < n; ++i) {
        if (on_merged_path[i])
            continue;
        legacy.run([&programs, &slots, &errors, &latencies, &msSinceStart,
                    &harvest, i] {
            try {
                const ServiceProgram &program = programs[i];
                const std::shared_ptr<sim::Executor> executor =
                    programExecutor(program);
                JigsawSession session(program.circuit, program.device,
                                      *executor, program.trials,
                                      program.options);
                slots[i] = session.run();
                // Only run-built executors count: a caller-supplied
                // one carries its whole lifetime's counters.
                if (!program.executor)
                    harvest(*executor);
            } catch (...) {
                errors[i] = std::current_exception();
            }
            latencies[i] = msSinceStart();
        });
    }

    // Merged path, staged from the calling thread: schedule
    // concurrently, merge, execute the merged schedule (one runBatch
    // per merged group against the per-device shared executor),
    // split back, reconstruct concurrently.
    std::vector<std::size_t> merged_programs;
    for (std::size_t i = 0; i < n; ++i) {
        if (on_merged_path[i])
            merged_programs.push_back(i);
    }
    if (!merged_programs.empty()) {
        std::unordered_map<std::uint64_t, std::shared_ptr<sim::Executor>>
            shared_executors;
        std::vector<std::unique_ptr<JigsawSession>> sessions(n);
        std::vector<std::unique_ptr<Rng>> streams(n);
        for (std::size_t i : merged_programs) {
            const ServiceProgram &program = programs[i];
            std::shared_ptr<sim::Executor> &executor =
                shared_executors[device_keys[i]];
            if (!executor) {
                // The shared executor's own seed is irrelevant: every
                // merged draw comes from a per-program stream.
                executor = std::make_shared<sim::NoisySimulator>(
                    program.device, sim::NoisySimulatorOptions{
                                        .seed = program.executorSeed});
            }
            sessions[i] = std::make_unique<JigsawSession>(
                program.circuit, program.device, *executor,
                program.trials, program.options);
            streams[i] = std::make_unique<Rng>(program.executorSeed);
        }

        TaskGroup scheduling;
        for (std::size_t i : merged_programs) {
            scheduling.run([&sessions, &errors, &latencies, &msSinceStart,
                            i] {
                try {
                    sessions[i]->schedule();
                } catch (...) {
                    errors[i] = std::current_exception();
                    latencies[i] = msSinceStart();
                }
            });
        }
        scheduling.wait();

        std::vector<MergeSource> sources;
        sources.reserve(merged_programs.size());
        for (std::size_t i : merged_programs) {
            if (errors[i])
                continue;
            sources.push_back({i, &sessions[i]->compiled(),
                               &sessions[i]->schedule(),
                               &sessions[i]->plan(), device_keys[i],
                               shared_executors[device_keys[i]].get(),
                               streams[i].get()});
        }

        try {
            const MergedSchedule merged = mergeSchedules(sources);
            MergedExecutionStats exec_stats;
            std::vector<ExecutionResult> executions =
                executeMergedSchedules(sources, merged, &exec_stats);
            stats_.mergedPrograms = sources.size();
            stats_.mergedGroups = merged.groups.size();
            stats_.crossProgramGroups = merged.crossProgramGroups();
            stats_.pooledGlobalBatches = exec_stats.pooledGlobalBatches;
            stats_.pooledGlobalPrograms = exec_stats.pooledGlobalPrograms;

            TaskGroup reconstructing;
            for (std::size_t k = 0; k < sources.size(); ++k) {
                const std::size_t i = sources[k].program;
                reconstructing.run([&sessions, &executions, &slots,
                                    &errors, &latencies, &msSinceStart, i,
                                    k] {
                    try {
                        sessions[i]->adoptExecution(
                            std::move(executions[k]));
                        slots[i] = sessions[i]->run();
                    } catch (...) {
                        errors[i] = std::current_exception();
                    }
                    latencies[i] = msSinceStart();
                });
            }
            reconstructing.wait();
        } catch (...) {
            // A merge/execution failure fails every merged program
            // that had not already failed on its own.
            const std::exception_ptr error = std::current_exception();
            for (const MergeSource &src : sources) {
                if (!errors[src.program])
                    errors[src.program] = error;
            }
        }
        for (const auto &[key, executor] : shared_executors)
            harvest(*executor);
    }
    legacy.wait();

    stats_.programs = n;
    stats_.wallMs = msSinceStart();
    stats_.latenciesMs = std::move(latencies);
    stats_.transpileHits = compiler::transpileCacheHits() - transpile_hits0;
    stats_.transpileMisses =
        compiler::transpileCacheMisses() - transpile_misses0;
    stats_.transpileRebinds =
        compiler::transpileSkeletonRebinds() - transpile_rebinds0;
    stats_.executorPmfHits = pmf_hits.load();
    stats_.executorPmfMisses = pmf_misses.load();
    stats_.prefixStateHits = prefix_hits.load();
    stats_.prefixStateMisses = prefix_misses.load();
    const simd::DispatchCounters simd_delta =
        simd::dispatchCounters().since(simd0);
    stats_.simdScalarCalls = simd_delta.backendTotal(simd::kBackendScalar);
    stats_.simdAvx2Calls = simd_delta.backendTotal(simd::kBackendAvx2);
    stats_.simdAvx512Calls = simd_delta.backendTotal(simd::kBackendAvx512);

    for (std::size_t i = 0; i < n; ++i) {
        if (errors[i])
            std::rethrow_exception(errors[i]);
    }
    std::vector<JigsawResult> results;
    results.reserve(slots.size());
    for (std::optional<JigsawResult> &slot : slots) {
        panicIf(!slot, "JigsawService: program finished without result");
        results.push_back(std::move(*slot));
    }
    return results;
}

} // namespace core
} // namespace jigsaw
