#include "core/service.h"

#include <chrono>
#include <optional>

#include "common/error.h"
#include "common/parallel.h"

namespace jigsaw {
namespace core {

namespace {

/** The executor a program runs against: its own, or a fresh seeded
 *  default — the one definition shared by the concurrent service and
 *  the sequential reference. */
std::shared_ptr<sim::Executor>
programExecutor(const ServiceProgram &program)
{
    if (program.executor)
        return program.executor;
    return std::make_shared<sim::NoisySimulator>(
        program.device,
        sim::NoisySimulatorOptions{.seed = program.executorSeed});
}

} // namespace

std::vector<JigsawResult>
runProgramsSequentially(const std::vector<ServiceProgram> &programs)
{
    std::vector<JigsawResult> results;
    results.reserve(programs.size());
    for (const ServiceProgram &program : programs) {
        const std::shared_ptr<sim::Executor> executor =
            programExecutor(program);
        results.push_back(runJigsaw(program.circuit, program.device,
                                    *executor, program.trials,
                                    program.options));
    }
    return results;
}

std::vector<JigsawResult>
JigsawService::run(const std::vector<ServiceProgram> &programs)
{
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::optional<JigsawResult>> slots(programs.size());

    TaskGroup group;
    for (std::size_t i = 0; i < programs.size(); ++i) {
        group.run([&programs, &slots, i] {
            const ServiceProgram &program = programs[i];
            const std::shared_ptr<sim::Executor> executor =
                programExecutor(program);
            JigsawSession session(program.circuit, program.device,
                                  *executor, program.trials,
                                  program.options);
            slots[i] = session.run();
        });
    }
    group.wait();

    stats_.programs = programs.size();
    stats_.wallMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();

    std::vector<JigsawResult> results;
    results.reserve(slots.size());
    for (std::optional<JigsawResult> &slot : slots) {
        panicIf(!slot, "JigsawService: program finished without result");
        results.push_back(std::move(*slot));
    }
    return results;
}

} // namespace core
} // namespace jigsaw
