/**
 * @file
 * StreamingScheduler: submit/poll job scheduling over JigsawSessions.
 *
 * The batch JigsawService::run answers "here are N programs, run them
 * all"; this subsystem answers the online shape — programs trickling
 * in from concurrent callers, each wanting its result as soon as
 * possible. One scheduler owns:
 *
 *  - a priority-aware admission queue (submit() -> SubmitResult) with
 *    bounded admission: when StreamOptions::maxQueuedJobs caps the
 *    backlog, submits past a class's shed threshold are rejected with
 *    a finite tryLaterAfterMs hint derived from the observed drain
 *    rate (Low sheds first, High last), and sustained backlog shrinks
 *    the merge window toward immediate dispatch until the queue
 *    drains;
 *  - merge windows: scheduled jobs wait up to StreamOptions::windowMs
 *    (or until windowMaxJobs join) for compatible work, then the
 *    window dispatches as ONE cross-program merged execution — the
 *    same (device fingerprint, CPM gate-prefix hash) keyed
 *    mergeSchedules/executeMergedSchedules path the batch service
 *    uses, built incrementally (core::mergeSourceInto) as jobs join
 *    and unwound (core::removeSourceFrom) when a windowed job is
 *    cancelled or expires;
 *  - a dispatch queue with priority classes, waiting-time aging (no
 *    starvation), deficit round-robin across ServiceProgram::tenant
 *    tags inside each aged class (one hot tenant cannot starve the
 *    rest), and an in-flight cap that makes priority meaningful under
 *    load;
 *  - fault-tolerant dispatch: a TransientError (common/error.h)
 *    anywhere in a job's pipeline restarts that job from scratch with
 *    capped exponential backoff (StreamOptions::maxRetries); a merged
 *    window whose execution throws quarantines its members — each is
 *    retried in an exclusive single-job window, so one bad program
 *    cannot kill its window partners; a job past its
 *    ServiceProgram::deadlineMs SLO is expired instead of dispatched;
 *  - per-device persistent shared executors, so circuits recurring
 *    across windows keep hitting warm evolution caches;
 *  - an optional worker execution tier behind the Transport seam
 *    (core/transport.h): with StreamOptions::worker.workers > 0 (or a
 *    caller-supplied StreamOptions::transport), merged windows are
 *    dispatched to the fleet as LEASES — lease id, deadline
 *    (worker.leaseTimeoutMs), heartbeat interval — and supervised by
 *    the dispatcher. A worker that dies (heartbeat stops), stalls
 *    past the lease deadline, or whose response is lost to a
 *    transport fault has its lease revoked and the window
 *    re-dispatched to another worker; after worker.workerRetries
 *    lost leases (or with no live worker) the window degrades
 *    gracefully to the local executeMergedSchedules path. Lost-lease
 *    re-dispatch never charges the jobs' transient-retry budget: the
 *    jobs did nothing wrong, the fleet did.
 *
 * A lone job whose window expires without partners dispatches
 * immediately as a single-source execution, so streaming latency
 * never regresses below the session-at-a-time path; Priority::High
 * jobs never wait in a window at all.
 *
 * Determinism: a job created with a service-owned executor samples
 * every draw from its own Rng(executorSeed) stream through the merged
 * execution machinery, so its result is bitwise-identical to a
 * sequential runJigsaw with the same inputs — whatever the window
 * composition, submitter interleaving, or pool size. Retries preserve
 * this: a transient failure restarts the whole pipeline (never
 * resumes a half-consumed stream), so the retried job replays the
 * identical draw sequence. That is the contract
 * tests/test_stream.cpp asserts under concurrent submitters and
 * injected faults (common/fault.h).
 *
 * Thread-safety: submit/poll/wait/cancel/release/drain/stats may be
 * called concurrently from any thread. Stage and execution work runs
 * on the shared pool; windowing, dispatch, retry, and expiry
 * decisions are made by one internal dispatcher thread. wait()/
 * drain() (and, on a zero-worker pool, the dispatcher itself) help
 * drain the pool queue, so the scheduler makes progress even on a
 * single-core machine.
 *
 * Retention: a terminal job's heavyweight pipeline state (session,
 * draw stream, executor reference) is released as soon as no task can
 * touch it; its result and latency record stay addressable for
 * poll()/wait() until the caller release()s the handle or, with
 * StreamOptions::resultRetention set, until the result ages out of
 * the delivered-results window (oldest first, after wait() delivered
 * it). Latency distributions live in fixed-bucket histograms
 * (StreamStats::latencyByClass), bounded by construction, so a
 * scheduler can serve an unbounded job stream in bounded memory.
 *
 * Observability: lifecycle transitions (admission, shed, window
 * open/close/resize, lease grant/revoke, retry, quarantine, expiry)
 * are logged through the "core.scheduler" logger (common/log.h);
 * counters, gauges, and latency histograms are published into the
 * process-wide obs::Registry via a scrape-time collector, optionally
 * served over HTTP (StreamOptions::metricsPort); and per-job pipeline
 * spans are recorded into StreamOptions::trace when set (obs/trace.h).
 */
#ifndef JIGSAW_CORE_SCHEDULER_H
#define JIGSAW_CORE_SCHEDULER_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "core/service.h"
#include "core/transport.h"

namespace jigsaw {

namespace obs {
class MetricsHttpServer; // obs/http.h
} // namespace obs

namespace core {

class StreamingScheduler
{
  public:
    explicit StreamingScheduler(StreamOptions options = {});

    /** Blocks until every submitted job is terminal (drain()). */
    ~StreamingScheduler();

    StreamingScheduler(const StreamingScheduler &) = delete;
    StreamingScheduler &operator=(const StreamingScheduler &) = delete;

    /**
     * Admit @p program into the scheduler and return immediately —
     * or, under bounded admission with the backlog at this class's
     * shed threshold, reject it (SubmitResult::admitted false) with a
     * finite tryLaterAfterMs hint. Programs with a caller-supplied
     * executor (or under MergePolicy::Never) run as independent
     * sessions against that executor, exactly like the batch
     * service's legacy path; everything else becomes merge-eligible
     * with a private Rng(executorSeed) draw stream.
     */
    SubmitResult submit(ServiceProgram program,
                        Priority priority = Priority::Normal);

    /**
     * Register @p prototype for compile-once/re-bind iteration
     * (JigsawService::compileParametric documents the contract). The
     * transpile memo is prewarmed with the prototype's global + CPM
     * compilations before the handle is returned, so even the first
     * submitIteration()'s compile stage is pure cache hits.
     */
    ParametricHandle compileParametric(ServiceProgram prototype);

    /**
     * submit() a copy of @p handle's prototype with @p angles re-bound
     * into its circuit. The iteration shares the prototype's skeleton,
     * so its window key, transpile memo entries, and split-prefix
     * evolution states all collide with every other iteration's.
     */
    SubmitResult submitIteration(ParametricHandle handle,
                                 const std::vector<double> &angles,
                                 Priority priority = Priority::Normal);

    /** Status snapshot, or std::nullopt for an unknown handle. */
    std::optional<JobStatus> poll(JobHandle handle) const;

    /**
     * Block until @p handle is terminal. Returns the job's result,
     * rethrows its failure, throws std::runtime_error if it was
     * cancelled or DeadlineExceededError if it expired; throws
     * std::invalid_argument for an unknown (or released) handle.
     * Under StreamOptions::resultRetention, a successful wait()
     * marks the result delivered and may evict the oldest delivered
     * results past the cap.
     */
    JigsawResult wait(JobHandle handle);

    /**
     * Withdraw a job that has not been dispatched yet: queued,
     * preparing, awaiting a retry, or sitting in a merge window (its
     * merge sources are unwound from the window's incremental
     * schedule). Returns true on success, false once the job is
     * executing or terminal (it then runs to completion and poll/wait
     * keep working).
     */
    bool cancel(JobHandle handle);

    /**
     * Drop a terminal job's result and bookkeeping immediately; its
     * handle becomes unknown to poll/wait. Returns false while the
     * job is still live, or when the handle is already unknown.
     */
    bool release(JobHandle handle);

    /**
     * Block until every job submitted so far is terminal. Open merge
     * windows are closed immediately rather than waiting out
     * windowMs.
     */
    void drain();

    /** Counter/latency snapshot (thread-safe at any time). */
    StreamStats stats() const;

    /** The metrics endpoint's bound port (resolves an ephemeral
     *  StreamOptions::metricsPort = 0 request), or -1 when no
     *  endpoint is serving. */
    int metricsPort() const;

    /** Options in effect. */
    const StreamOptions &options() const { return options_; }

  private:
    using Clock = std::chrono::steady_clock;
    static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

    /** One submitted program and everything it accretes. */
    struct Job
    {
        Job(std::uint64_t id_, Priority priority_, ServiceProgram program_)
            : id(id_), priority(priority_), program(std::move(program_))
        {
        }

        std::uint64_t id;
        Priority priority;
        ServiceProgram program;
        JobState state = JobState::Queued;
        bool mergeEligible = false;
        /** Retried solo after a poisoned merged window: joins only an
         *  exclusive single-job window from now on. */
        bool quarantined = false;
        bool delivered = false; ///< wait() returned this result.
        std::uint32_t attempts = 0; ///< Transient retries consumed.
        std::uint64_t deviceKey = 0; ///< DeviceModel::fingerprint().
        std::uint64_t windowKey = 0; ///< Window compatibility key.
        Clock::time_point submitAt{};
        Clock::time_point dispatchAt{};
        Clock::time_point doneAt{};
        Clock::time_point deadlineAt{}; ///< Unset when no deadlineMs.
        Clock::time_point retryAt{};    ///< Backoff target (retry queue).
        std::shared_ptr<sim::Executor> executor;
        std::unique_ptr<Rng> stream; ///< Merged-path draw stream.
        /** Shared so a worker-tier WindowRequest can retain it: a
         *  revoked lease's stale worker may still be reading the
         *  session's const artifacts after the scheduler released the
         *  job's state (see WindowRequest::retain). */
        std::shared_ptr<JigsawSession> session;
        std::exception_ptr error;
        std::shared_ptr<JigsawResult> result;
        std::uint64_t windowId = 0;
        std::size_t windowSlot = kNoSlot;
        /** Trace attempt index (obs::TraceRecorder spans): 0 for the
         *  first pass, bumped on every requeue — retry or quarantine
         *  — so a retried job's span sets stay distinguishable. */
        std::uint32_t traceEpoch = 0;
        Clock::time_point windowStartAt{}; ///< Joined its merge window.
    };

    /** One open (or closed, pending dispatch) merge window. */
    struct Window
    {
        std::uint64_t id = 0;
        std::uint64_t key = 0;
        Priority bestClass = Priority::Low;
        bool exclusive = false; ///< Quarantine window: one job, no joins.
        Clock::time_point openedAt{};
        Clock::time_point deadline{};
        bool closed = false;
        bool dispatched = false;
        std::size_t remaining = 0; ///< Live jobs still running.
        std::vector<std::uint64_t> jobIds; ///< Live members, join order.
        /** One slot per join (stable across cancels; parallel). */
        std::vector<MergeSource> sources;
        std::vector<std::uint64_t> slotJob; ///< 0 = withdrawn slot.
        MergedSchedule merged; ///< Maintained incrementally.
    };

    /** One outstanding worker-tier dispatch of a window. Revoking a
     *  lease and granting a fresh one IS the re-dispatch path; the
     *  window itself stays parked (dispatched, in-flight) throughout. */
    struct Lease
    {
        std::uint64_t id = 0;
        std::uint64_t windowId = 0;
        /** Lost leases so far for this window (grants = attempts+1);
         *  past worker.workerRetries the window falls back locally. */
        std::size_t attempts = 0;
        Clock::time_point deadline{};
    };

    /** A dispatchable unit waiting for an in-flight slot. */
    struct ReadyEntry
    {
        bool isWindow = false;
        std::uint64_t id = 0; ///< Window id or (solo) job id.
        Priority cls = Priority::Normal;
        Clock::time_point readySince{};
        /** Tenant charged by deficit round-robin (a multi-tenant
         *  window is attributed to its first member's tenant). */
        std::string tenant;
        std::size_t cost = 1; ///< DRR quantum cost (window job count).
    };

    void dispatcherLoop();
    void startPrepare(Job &job);                       // mutex held
    void onPrepared(std::uint64_t job_id, std::exception_ptr error);
    void joinWindow(Job &job, Clock::time_point now);  // mutex held
    void closeWindow(Window &window, Clock::time_point now); // held
    bool dispatchNext(Clock::time_point now);          // mutex held
    void dispatchSolo(Job &job, Clock::time_point now);   // held
    void dispatchWindow(Window &window, Clock::time_point now); // held
    void runWindowTask(std::uint64_t window_id);
    /** @name Worker tier (all with mutex held). @{ */
    /** Dispatch @p window on the local pool (the no-transport path
     *  and the degradation floor). */
    void runWindowLocallyLocked(Window &window);
    /** Build the unbound WindowRequest envelope for @p window. */
    WindowRequest buildRequestLocked(Window &window,
                                     std::uint64_t lease_id) const;
    /** Grant (or re-grant, at @p attempts > 0) a lease for
     *  @p window; falls back to runWindowLocallyLocked once the fleet
     *  is dead or worker.workerRetries leases were lost. */
    void grantLeaseLocked(Window &window, std::size_t attempts,
                          Clock::time_point now);
    /** Revoke leases whose worker died (heartbeat silence) or whose
     *  deadline passed, and re-dispatch their windows. */
    void superviseLeasesLocked(Clock::time_point now);
    /** Drain transport responses into window completions. */
    void drainTransportLocked();
    /** Shared completion path for worker and local execution: adopt
     *  results into the member jobs (spawning their reconstruction
     *  tasks) or route @p error through quarantine/retry. */
    void completeWindowExecutionLocked(
        std::uint64_t window_id,
        std::shared_ptr<std::vector<ExecutionResult>> executions,
        const MergedExecutionStats &exec_stats, std::exception_ptr error,
        double execute_ms, std::uint64_t lease_id);
    /** Earliest lease deadline/heartbeat check the dispatcher must
     *  wake for, or nullopt when no leases are outstanding. */
    std::optional<Clock::time_point>
    nextLeaseEventLocked(Clock::time_point now) const;
    /** @} */
    /** Route a pipeline failure: quarantine a poisoned-window member,
     *  schedule a transient retry within budget/deadline, or finish
     *  the job as Failed/Expired. */
    void handleJobFailure(Job &job, std::exception_ptr error,
                          Clock::time_point now,
                          bool quarantine); // mutex held
    /** Reset a job's pipeline state and queue it for (re)admission at
     *  @p retry_at. */
    void requeueLocked(Job &job, Clock::time_point retry_at);
    /** Withdraw an undispatched job into @p terminal_state (shared by
     *  cancel() and deadline expiry); false once dispatched/terminal. */
    bool withdrawLocked(Job &job, JobState terminal_state,
                        std::exception_ptr error);
    /** Expire backlogged jobs past their deadline. */
    void expireDueJobsLocked(Clock::time_point now);
    void finishJob(Job &job, JobState state,
                   std::exception_ptr error); // mutex held
    void releaseJobState(Job &job);           // mutex held
    /** Record a delivered result and evict past resultRetention. */
    void markDeliveredLocked(Job &job);
    /** Finite backoff hint for a shed submit (drain-rate EWMA). */
    double retryHintMsLocked(std::size_t threshold) const;
    /** windowMs after backlog-pressure shrinking and burst growth
     *  (StreamOptions::burstGrowMax); updates the width/burst gauges
     *  and the shrink/grow counters. */
    double effectiveWindowMsLocked();
    std::size_t inFlightCap() const;
    /** stats() body, for callers already holding mutex_. */
    StreamStats statsLocked() const;
    /** Create/cache this scheduler's registry instruments and its
     *  scrape-time collector (constructor only). */
    void registerMetrics();
    /** Flush stats_ deltas into the registry counters (collector
     *  callback and final flush in the destructor). Deltas, not
     *  set(), keep the process-wide counters monotone across
     *  scheduler lifetimes. */
    void publishMetricsLocked();

    const StreamOptions options_;

    mutable std::mutex mutex_;
    std::condition_variable dispatcherCv_; ///< Wakes the dispatcher.
    std::condition_variable jobCv_;        ///< Wakes wait()/drain().
    bool stopping_ = false;

    std::uint64_t nextJobId_ = 1;
    std::uint64_t nextWindowId_ = 1;
    std::unordered_map<std::uint64_t, std::unique_ptr<Job>> jobs_;
    std::unordered_map<std::uint64_t, std::unique_ptr<Window>> windows_;
    std::vector<std::uint64_t> admission_;     ///< Queued job ids.
    std::vector<std::uint64_t> retryQueue_;    ///< Awaiting backoff.
    std::vector<std::uint64_t> deadlined_;     ///< Jobs with an SLO.
    std::vector<std::uint64_t> scheduleReady_; ///< Prepared, unwindowed.
    std::vector<ReadyEntry> readyQueue_;       ///< Awaiting dispatch.
    std::deque<std::uint64_t> retired_; ///< Delivered, eviction order.
    std::size_t inFlight_ = 0;   ///< Dispatched windows/solo jobs.
    std::size_t preparing_ = 0;  ///< Prepare stages on the pool.
    std::size_t liveJobs_ = 0;   ///< Non-terminal jobs.
    std::size_t backlog_ = 0;    ///< Undispatched live jobs.
    /** @name Deficit round-robin across tenants. @{ */
    std::unordered_map<std::string, double> tenantDeficit_;
    std::vector<std::string> tenantRotation_; ///< First-seen order.
    std::size_t rrCursor_ = 0;
    /** @} */
    double drainEwmaMs_ = 0.0; ///< EWMA ms between completions.
    Clock::time_point lastCompletionAt_{};
    /** @name Burst detector: EWMA inter-arrival vs the drain EWMA
     *  decides the grow direction of adaptive windows. @{ */
    double arrivalEwmaMs_ = 0.0; ///< EWMA ms between submits.
    Clock::time_point lastSubmitAt_{};
    /** @} */
    /** Per-device persistent shared executors (merged path). */
    std::unordered_map<std::uint64_t, std::shared_ptr<sim::Executor>>
        sharedExecutors_;
    /** Parametric prototypes by ParametricHandle::id. */
    std::unordered_map<std::uint64_t, ServiceProgram> prototypes_;
    std::uint64_t nextParametricId_ = 1;
    /** Worker tier: null means every window runs locally. */
    std::shared_ptr<Transport> transport_;
    std::unordered_map<std::uint64_t, Lease> leases_; ///< By lease id.
    std::uint64_t nextLeaseId_ = 1;

    StreamStats stats_;

    /** @name Registry wiring: cached instrument pointers (lock-free
     *  to write; the registry mutex is paid once, in the
     *  constructor), the last-published snapshot behind the
     *  delta-flush, and the scrape-time collector id. @{ */
    std::vector<std::pair<obs::Counter *, std::size_t StreamStats::*>>
        counterBindings_;
    std::vector<std::pair<obs::Counter *, std::uint64_t StreamStats::*>>
        cacheBindings_;
    std::array<obs::Histogram *, kPriorityClasses> latencyHist_{};
    std::array<obs::Histogram *, kPriorityClasses> queueWaitHist_{};
    std::array<obs::Histogram *, kPriorityClasses> executeHist_{};
    obs::Gauge *backlogGauge_ = nullptr;
    obs::Gauge *inFlightGauge_ = nullptr;
    obs::Gauge *windowWidthGauge_ = nullptr;
    obs::Gauge *burstScoreGauge_ = nullptr;
    StreamStats published_; ///< Counter values already flushed.
    std::uint64_t collectorId_ = 0;
    /** Optional loopback HTTP/1.0 endpoint (metricsPort >= 0). */
    std::unique_ptr<obs::MetricsHttpServer> metricsServer_;
    /** @} */

    TaskGroup group_;        ///< All pool work this scheduler owns.
    std::thread dispatcher_; ///< Started last, joined in ~.
};

} // namespace core
} // namespace jigsaw

#endif // JIGSAW_CORE_SCHEDULER_H
