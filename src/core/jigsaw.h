/**
 * @file
 * The JigSaw driver (paper Sections 4 and 4.4).
 *
 * Executes a program in two modes against an Executor:
 *  - global mode: the noise-aware-compiled full program, all qubits
 *    measured, for a configurable fraction (default half) of the
 *    trials;
 *  - subset mode: one Circuit with Partial Measurements per subset,
 *    sharing the remaining trials equally, each optionally recompiled
 *    so its few measurements land on the best readout qubits without
 *    extra SWAPs;
 * and reconstructs the output PMF with Bayesian updates. Subset sizes
 * {2} give the default JigSaw; {2,3,4,5} give the default JigSaw-M
 * with top-down (largest-size-first) reconstruction.
 *
 * runJigsaw() is a thin wrapper over the staged pipeline: see
 * core/pipeline.h for the per-stage artifacts, core/session.h for the
 * resumable single-program driver, and core/service.h for running
 * many programs concurrently.
 */
#ifndef JIGSAW_CORE_JIGSAW_H
#define JIGSAW_CORE_JIGSAW_H

#include <cstdint>
#include <optional>
#include <vector>

#include "circuit/circuit.h"
#include "common/histogram.h"
#include "compiler/transpiler.h"
#include "core/bayesian.h"
#include "core/subsets.h"
#include "device/device_model.h"
#include "sim/simulators.h"

namespace jigsaw {
namespace core {

/** How CPM subsets are generated. */
enum class SubsetMethod
{
    SlidingWindow,  ///< Paper default: n windows per subset size.
    RandomCovering, ///< Random subsets covering every qubit (Fig 9b).
};

/** Configuration of a JigSaw run. */
struct JigsawOptions
{
    /** CPM subset sizes; {2} = JigSaw, {2,3,4,5} = JigSaw-M. */
    std::vector<int> subsetSizes = {2};
    /** Fraction of trials spent in global mode (paper: one half). */
    double globalFraction = 0.5;
    /** Recompile each CPM for its measured qubits (Section 4.2.2). */
    bool recompileCpms = true;
    /** Subset generation method. */
    SubsetMethod subsetMethod = SubsetMethod::SlidingWindow;
    /** Explicit subsets (bit positions); overrides sizes/method. */
    std::optional<std::vector<Subset>> customSubsets;
    /** Compilation settings for global mode and CPM recompilation. */
    compiler::TranspileOptions transpile;
    /** Bayesian reconstruction controls. */
    ReconstructionOptions reconstruction;
    /** Seed for random subset generation. */
    std::uint64_t seed = 99;
};

/** One executed CPM with its evidence. */
struct CpmRecord
{
    Subset subset;                      ///< Measured bit positions.
    compiler::CompiledCircuit compiled; ///< The CPM's compilation.
    Pmf localPmf;                       ///< Observed local PMF.
    std::uint64_t trials = 0;           ///< Trials spent on this CPM.
};

/** Everything a JigSaw run produced. */
struct JigsawResult
{
    Pmf output;                          ///< Reconstructed output PMF.
    Pmf globalPmf;                       ///< Global-mode observed PMF.
    compiler::CompiledCircuit globalCompiled; ///< Global compilation.
    std::vector<CpmRecord> cpms;         ///< Subset-mode executions.
    std::uint64_t globalTrials = 0;      ///< Trials in global mode.
    std::uint64_t subsetTrials = 0;      ///< Trials in subset mode.

    /** The marginals (local PMFs + subsets) of all CPMs. */
    std::vector<Marginal> marginals() const;
};

/**
 * Run JigSaw on @p logical (a measured logical circuit) against
 * @p executor, spending @p total_trials in total — the same trial
 * budget the baseline gets.
 */
JigsawResult runJigsaw(const circuit::QuantumCircuit &logical,
                       const device::DeviceModel &dev,
                       sim::Executor &executor, std::uint64_t total_trials,
                       const JigsawOptions &options = {});

/**
 * Baseline: Noise-Aware-SABRE compile and spend all trials on the
 * full program (paper Section 5.2). Returns the observed PMF.
 */
Pmf runBaseline(const circuit::QuantumCircuit &logical,
                const device::DeviceModel &dev, sim::Executor &executor,
                std::uint64_t total_trials,
                const compiler::TranspileOptions &options = {});

/** Options for JigSaw-M with the paper's default sizes 2..5. */
JigsawOptions jigsawMOptions();

} // namespace core
} // namespace jigsaw

#endif // JIGSAW_CORE_JIGSAW_H
