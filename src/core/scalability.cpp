#include "core/scalability.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace jigsaw {
namespace core {

double
reconstructionMemoryBytes(const ScalabilityConfig &config)
{
    fatalIf(config.nQubits < 1 || config.numCpms < 1 ||
            config.subsetSizes.empty() || config.trials == 0,
            "reconstructionMemoryBytes: incomplete config");

    const double t = static_cast<double>(config.trials);
    const double n = config.nQubits;
    const double big_n = config.numCpms;

    // One global PMF of (n + 8)-byte entries plus N intermediate and
    // one output PMF of 8-byte entries, each with eps*T entries.
    const double global_term = (n + 8.0 * (2.0 + big_n)) *
                               config.epsilon * t;

    // N local PMFs per subset size s, each with L_s entries of
    // (s + 8) bytes.
    double local_term = 0.0;
    for (int s : config.subsetSizes) {
        const double full = s < 60 ? std::ldexp(1.0, s) : 1e18;
        const double entries = std::min(full, config.delta * t);
        local_term += entries * (static_cast<double>(s) + 8.0) * big_n;
    }
    return global_term + local_term;
}

double
reconstructionOperations(const ScalabilityConfig &config)
{
    fatalIf(config.nQubits < 1 || config.numCpms < 1 ||
            config.subsetSizes.empty() || config.trials == 0,
            "reconstructionOperations: incomplete config");
    const double s_count = static_cast<double>(config.subsetSizes.size());
    return 4.0 * config.epsilon * s_count *
           static_cast<double>(config.numCpms) *
           static_cast<double>(config.trials);
}

} // namespace core
} // namespace jigsaw
