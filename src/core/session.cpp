#include "core/session.h"

#include <utility>

#include "common/error.h"

namespace jigsaw {
namespace core {

JigsawSession::JigsawSession(circuit::QuantumCircuit logical,
                             device::DeviceModel dev,
                             sim::Executor &executor,
                             std::uint64_t total_trials,
                             JigsawOptions options)
    : logical_(std::move(logical)), dev_(std::move(dev)),
      executor_(executor), totalTrials_(total_trials),
      options_(std::move(options))
{
}

JigsawSession::Stage
JigsawSession::stage() const
{
    if (output_)
        return Stage::Reconstructed;
    if (execution_)
        return Stage::Executed;
    if (schedule_)
        return Stage::Scheduled;
    if (jobs_)
        return Stage::Compiled;
    if (plan_)
        return Stage::Planned;
    return Stage::Created;
}

const SubsetPlan &
JigsawSession::plan()
{
    if (!plan_)
        plan_ = planSubsets(logical_, totalTrials_, options_);
    return *plan_;
}

const CompiledJobs &
JigsawSession::compiled()
{
    if (!jobs_)
        jobs_ = compileJobs(logical_, dev_, plan(), options_);
    return *jobs_;
}

const ExecutionSchedule &
JigsawSession::schedule()
{
    if (!schedule_)
        schedule_ = buildSchedule(compiled());
    return *schedule_;
}

const ExecutionResult &
JigsawSession::executed()
{
    if (!execution_) {
        execution_ =
            executeSchedule(executor_, compiled(), schedule(), plan());
    }
    return *execution_;
}

void
JigsawSession::adoptExecution(ExecutionResult result)
{
    fatalIf(execution_.has_value(),
            "adoptExecution: session already executed");
    schedule(); // run the plan/compile/schedule stages if missing
    fatalIf(result.cpmPmfs.size() != jobs_->cpms.size(),
            "adoptExecution: result does not cover every compiled CPM");
    // A merged window handing back the wrong slice (an empty
    // placeholder from a withdrawn source, or another program's
    // global) would silently poison the reconstruction prior; the
    // global PMF's width is the cheap invariant that catches it.
    fatalIf(result.globalPmf.nQubits() != plan_->nMeasured,
            "adoptExecution: global PMF width does not match the plan");
    execution_ = std::move(result);
}

const Pmf &
JigsawSession::output()
{
    if (!output_) {
        output_ = reconstructOutput(
            buildReconstructionInput(compiled(), executed()),
            options_.reconstruction);
    }
    return *output_;
}

JigsawResult
JigsawSession::run()
{
    output();
    JigsawResult result{*output_,        execution_->globalPmf,
                        jobs_->global,   {},
                        plan_->globalTrials, plan_->subsetTrials};
    result.cpms.reserve(jobs_->cpms.size());
    for (std::size_t i = 0; i < jobs_->cpms.size(); ++i) {
        const CpmJob &job = jobs_->cpms[i];
        result.cpms.push_back({job.subset, job.compiled,
                               execution_->cpmPmfs[i], job.trials});
    }
    return result;
}

} // namespace core
} // namespace jigsaw
