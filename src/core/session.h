/**
 * @file
 * JigsawSession: one program driven through the staged pipeline.
 *
 * A session owns the per-program pipeline state and advances lazily,
 * stage by stage — plan() -> compiled() -> schedule() -> executed() ->
 * output() — each accessor running every missing predecessor first.
 * Benches and ablations can stop at any stage and inspect the typed
 * artifact (e.g. time compilation alone, or swap the reconstruction
 * options after execution); runJigsaw() is simply run() on a fresh
 * session. Sessions are single-threaded objects: no two threads may
 * call into one session concurrently, but a session may be handed
 * from thread to thread between stages when the handoff is externally
 * synchronized — core::JigsawService runs whole sessions on pool
 * tasks, and core::StreamingScheduler advances one session on
 * different pool threads per stage (schedule on one, adoptExecution +
 * reconstruct on another) with its own mutex ordering the handoffs.
 * Stage accessors return references into the session; they stay valid
 * until the session is destroyed, which is what lets a merge window
 * hold MergeSource pointers to many sessions' artifacts.
 */
#ifndef JIGSAW_CORE_SESSION_H
#define JIGSAW_CORE_SESSION_H

#include <cstdint>
#include <optional>

#include "core/pipeline.h"

namespace jigsaw {
namespace core {

class JigsawSession
{
  public:
    /** The pipeline stages, in order. */
    enum class Stage
    {
        Created,       ///< Nothing run yet.
        Planned,       ///< SubsetPlan ready.
        Compiled,      ///< CompiledJobs ready.
        Scheduled,     ///< ExecutionSchedule ready.
        Executed,      ///< ExecutionResult ready.
        Reconstructed, ///< Output PMF ready.
    };

    /**
     * The circuit, device, and options are copied so the session can
     * run asynchronously; @p executor is borrowed and must outlive the
     * session. Validation happens in the planning stage, not here.
     */
    JigsawSession(circuit::QuantumCircuit logical,
                  device::DeviceModel dev, sim::Executor &executor,
                  std::uint64_t total_trials, JigsawOptions options = {});

    /** Last completed stage. */
    Stage stage() const;

    /** @name Stage accessors (each runs missing predecessors).
     *  @{ */
    const SubsetPlan &plan();
    const CompiledJobs &compiled();
    const ExecutionSchedule &schedule();
    const ExecutionResult &executed();
    const Pmf &output();
    /** @} */

    /**
     * Resume from an externally produced execution stage: adopt
     * @p result as this session's ExecutionResult (advancing through
     * any missing earlier stages first) so reconstruction proceeds
     * without the session's executor ever sampling. This is how the
     * cross-program merged service hands a session the split-back
     * slice of a merged execution. The result must cover every
     * compiled CPM (throws std::invalid_argument otherwise); adopting
     * over an already-executed session is rejected the same way.
     */
    void adoptExecution(ExecutionResult result);

    /** Run every remaining stage and assemble the JigsawResult. */
    JigsawResult run();

    /** The program this session runs. */
    const circuit::QuantumCircuit &logical() const { return logical_; }

    /** The device this session compiles for. */
    const device::DeviceModel &device() const { return dev_; }

  private:
    circuit::QuantumCircuit logical_;
    device::DeviceModel dev_;
    sim::Executor &executor_;
    std::uint64_t totalTrials_;
    JigsawOptions options_;

    std::optional<SubsetPlan> plan_;
    std::optional<CompiledJobs> jobs_;
    std::optional<ExecutionSchedule> schedule_;
    std::optional<ExecutionResult> execution_;
    std::optional<Pmf> output_;
};

} // namespace core
} // namespace jigsaw

#endif // JIGSAW_CORE_SESSION_H
