#include "core/transport.h"

#include "common/error.h"

namespace jigsaw {
namespace core {

std::exception_ptr
responseError(const WindowResponse &response)
{
    // Reconstruct the scheduler-side error taxonomy from the
    // serialized (message, transient) pair: the retry machinery keys
    // on TransientError, everything else is terminal. The original
    // concrete type is gone — the price of a serializable envelope —
    // but only the transient/terminal split drives scheduling.
    panicIf(response.ok, "responseError: response carries no error");
    if (response.transientError)
        return std::make_exception_ptr(
            TransientError(response.errorMessage));
    return std::make_exception_ptr(
        std::runtime_error(response.errorMessage));
}

void
validateRequest(const WindowRequest &request)
{
    panicIf(request.device == nullptr,
            "transport: request without a device model");
    panicIf(request.seeds.size() != request.sources.size(),
            "transport: seeds not parallel to sources");
    for (const MergeSource &source : request.sources) {
        if (!source.enabled)
            continue;
        panicIf(source.executor != nullptr || source.rng != nullptr,
                "transport: request sources must arrive unbound");
        panicIf(source.jobs == nullptr || source.schedule == nullptr ||
                    source.plan == nullptr,
                "transport: enabled source without artifacts");
    }
}

} // namespace core
} // namespace jigsaw
