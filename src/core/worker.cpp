#include "core/worker.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <string>

#include "common/error.h"
#include "common/fault.h"
#include "common/log.h"
#include "common/rng.h"
#include "sim/simulators.h"

namespace jigsaw {
namespace core {

namespace {

log::Logger &
workerLog()
{
    static log::Logger &instance = log::logger("core.worker");
    return instance;
}

std::int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** worker.stall detail -> sleep milliseconds (defaulted and clamped:
 *  a malformed spec should slow a test down, not hang it). */
double
stallMs(const std::string &detail)
{
    double ms = 100.0;
    try {
        if (!detail.empty())
            ms = std::stod(detail);
    } catch (const std::exception &) {
        ms = 100.0;
    }
    return std::clamp(ms, 0.0, 10000.0);
}

} // namespace

WorkerPool::WorkerPool(WorkerOptions options) : options_(options)
{
    fatalIf(options_.workers == 0,
            "WorkerPool: a pool needs at least one worker");
    const std::int64_t now_ns = nowNs();
    workers_.reserve(options_.workers);
    for (std::size_t i = 0; i < options_.workers; ++i) {
        workers_.push_back(std::make_unique<WorkerState>());
        workers_.back()->lastBeatNs.store(now_ns,
                                          std::memory_order_relaxed);
    }
    threads_.reserve(options_.workers);
    for (std::size_t i = 0; i < options_.workers; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
    heartbeater_ = std::thread([this] { heartbeatLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    heartbeatCv_.notify_all();
    for (std::thread &thread : threads_) {
        if (thread.joinable())
            thread.join();
    }
    if (heartbeater_.joinable())
        heartbeater_.join();
}

void
WorkerPool::submit(WindowRequest request)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        inbox_.push_back(std::move(request));
    }
    cv_.notify_one();
}

std::optional<WindowResponse>
WorkerPool::tryPop()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (outbox_.empty())
        return std::nullopt;
    WindowResponse response = std::move(outbox_.front());
    outbox_.pop_front();
    return response;
}

void
WorkerPool::setResponseSignal(std::function<void()> signal)
{
    std::lock_guard<std::mutex> lock(mutex_);
    signal_ = std::move(signal);
}

std::size_t
WorkerPool::workerCount() const
{
    return workers_.size();
}

std::size_t
WorkerPool::liveWorkers() const
{
    std::size_t live = 0;
    for (const auto &worker : workers_) {
        if (worker->alive.load(std::memory_order_relaxed))
            ++live;
    }
    return live;
}

std::optional<double>
WorkerPool::msSinceHeartbeat(std::uint64_t lease_id) const
{
    std::size_t index = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = leaseWorker_.find(lease_id);
        if (it == leaseWorker_.end())
            return std::nullopt;
        index = it->second;
    }
    const std::int64_t beat =
        workers_[index]->lastBeatNs.load(std::memory_order_relaxed);
    return static_cast<double>(nowNs() - beat) / 1e6;
}

void
WorkerPool::revoke(std::uint64_t lease_id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = inbox_.begin(); it != inbox_.end(); ++it) {
        if (it->leaseId == lease_id) {
            inbox_.erase(it);
            break;
        }
    }
    leaseWorker_.erase(lease_id);
}

void
WorkerPool::workerLoop(std::size_t index)
{
    WorkerState &state = *workers_[index];
    for (;;) {
        WindowRequest request;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !inbox_.empty(); });
            if (stop_)
                return;
            if (inbox_.empty())
                continue;
            request = std::move(inbox_.front());
            inbox_.pop_front();
            leaseWorker_[request.leaseId] = index;
        }
        FaultInjector &injector = FaultInjector::instance();
        if (injector.armed()) {
            if (const auto stall =
                    injector.fireBehavioral("worker.stall")) {
                JIGSAW_LOG_WARN(workerLog(), "injected stall",
                                log::kv("worker", index),
                                log::kv("lease", request.leaseId),
                                log::kv("stall_ms", stallMs(*stall)));
                std::this_thread::sleep_for(std::chrono::microseconds(
                    static_cast<std::int64_t>(stallMs(*stall) * 1000.0)));
            }
            if (injector.fireBehavioral("worker.crash")) {
                JIGSAW_LOG_WARN(workerLog(),
                                "injected crash; worker dying",
                                log::kv("worker", index),
                                log::kv("lease", request.leaseId));
                // Simulated process death: no response, and marking
                // the worker dead stops its heartbeats, so the
                // scheduler's lease supervision revokes the lease.
                // leaseWorker_ keeps the assignment on purpose —
                // msSinceHeartbeat() must keep growing for it.
                state.alive.store(false, std::memory_order_relaxed);
                return;
            }
        }
        WindowResponse response = execute(request, index);
        std::function<void()> signal;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            leaseWorker_.erase(request.leaseId);
            outbox_.push_back(std::move(response));
            signal = signal_;
        }
        if (signal)
            signal();
    }
}

void
WorkerPool::heartbeatLoop()
{
    const double period_ms = std::clamp(options_.heartbeatMs, 0.5, 1000.0);
    const auto period = std::chrono::microseconds(
        static_cast<std::int64_t>(period_ms * 1000.0));
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (heartbeatCv_.wait_for(lock, period,
                                      [this] { return stop_; }))
                return;
        }
        const std::int64_t now_ns = nowNs();
        for (const auto &worker : workers_) {
            if (worker->alive.load(std::memory_order_relaxed))
                worker->lastBeatNs.store(now_ns,
                                         std::memory_order_relaxed);
        }
    }
}

WindowResponse
WorkerPool::execute(WindowRequest &request, std::size_t index)
{
    WindowResponse response;
    response.leaseId = request.leaseId;
    response.worker = index;
    const auto execute_start = std::chrono::steady_clock::now();
    try {
        validateRequest(request);
        WorkerState &state = *workers_[index];
        // Late-bind the envelope: this worker's own executor for the
        // window's device, and a fresh per-slot Rng(executorSeed)
        // stream. The streams replay the exact draws a sequential
        // runJigsaw would make, so the binding — not the worker —
        // determines the results.
        std::vector<std::unique_ptr<Rng>> streams(request.sources.size());
        for (std::size_t slot = 0; slot < request.sources.size(); ++slot) {
            MergeSource &source = request.sources[slot];
            if (!source.enabled)
                continue;
            std::shared_ptr<sim::Executor> &executor =
                state.executors[source.deviceKey];
            if (!executor) {
                // The executor's own seed never matters (every merged
                // draw comes from the per-slot streams), matching the
                // scheduler's shared-executor convention.
                executor = std::make_shared<sim::NoisySimulator>(
                    *request.device,
                    sim::NoisySimulatorOptions{.seed =
                                                   request.seeds[slot]});
            }
            source.executor = executor.get();
            streams[slot] = std::make_unique<Rng>(request.seeds[slot]);
            source.rng = streams[slot].get();
        }
        response.results = executeMergedSchedules(request.sources,
                                                  request.merged,
                                                  &response.execStats);
        response.ok = true;
    } catch (const std::exception &error) {
        response.ok = false;
        response.transientError = isTransient(std::current_exception());
        response.errorMessage = error.what();
    } catch (...) {
        response.ok = false;
        response.transientError = false;
        response.errorMessage = "worker: unknown execution failure";
    }
    response.executeMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - execute_start)
            .count();
    if (!response.ok)
        JIGSAW_LOG_WARN(workerLog(), "window execution failed",
                        log::kv("worker", index),
                        log::kv("lease", request.leaseId),
                        log::kv("transient", response.transientError),
                        log::kv("error", response.errorMessage));
    return response;
}

InProcTransport::InProcTransport(WorkerOptions options)
    : pool_(options)
{
}

void
InProcTransport::send(WindowRequest request)
{
    // Fires before the request reaches the fleet: a send fault means
    // the lease was never delivered.
    injectFaultPoint("transport.send");
    pool_.submit(std::move(request));
}

std::optional<WindowResponse>
InProcTransport::tryRecv()
{
    std::optional<WindowResponse> response = pool_.tryPop();
    // Fires AFTER the pop: the response is lost in flight, and the
    // lease deadline recovers the window.
    if (response)
        injectFaultPoint("transport.recv");
    return response;
}

void
InProcTransport::setResponseSignal(std::function<void()> signal)
{
    pool_.setResponseSignal(std::move(signal));
}

std::size_t
InProcTransport::workerCount() const
{
    return pool_.workerCount();
}

std::size_t
InProcTransport::liveWorkers() const
{
    return pool_.liveWorkers();
}

std::optional<double>
InProcTransport::msSinceHeartbeat(std::uint64_t lease_id) const
{
    return pool_.msSinceHeartbeat(lease_id);
}

void
InProcTransport::revoke(std::uint64_t lease_id)
{
    pool_.revoke(lease_id);
}

} // namespace core
} // namespace jigsaw
