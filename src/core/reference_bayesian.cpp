#include "core/reference_bayesian.h"

#include <map>

namespace jigsaw {
namespace core {

Pmf
referenceReconstruct(const Pmf &global,
                     const std::vector<Marginal> &marginals,
                     const ReconstructionOptions &options)
{
    if (marginals.empty())
        return global;

    Pmf output = global;
    for (int round = 0; round < options.maxRounds; ++round) {
        const Pmf prior = output;
        Pmf accumulated = prior;
        for (const Marginal &m : marginals) {
            const Pmf posterior =
                bayesianUpdate(prior, m, options.evidenceThreshold);
            for (const auto &[outcome, p] : posterior.probabilities())
                accumulated.accumulate(outcome, p);
        }
        accumulated.normalize();

        const double moved = hellingerDistance(output, accumulated);
        output = std::move(accumulated);
        if (moved < options.tolerance)
            break;
    }
    return output;
}

Pmf
referenceMultiLayerReconstruct(const Pmf &global,
                               const std::vector<Marginal> &marginals,
                               const ReconstructionOptions &options)
{
    std::map<int, std::vector<Marginal>> by_size;
    for (const Marginal &m : marginals)
        by_size[static_cast<int>(m.qubits.size())].push_back(m);

    Pmf output = global;
    if (options.layerOrder == LayerOrder::TopDown) {
        for (auto it = by_size.rbegin(); it != by_size.rend(); ++it)
            output = referenceReconstruct(output, it->second, options);
    } else {
        for (auto it = by_size.begin(); it != by_size.end(); ++it)
            output = referenceReconstruct(output, it->second, options);
    }
    return output;
}

} // namespace core
} // namespace jigsaw
