#include "core/bayesian.h"

#include <algorithm>
#include <map>

#include "common/error.h"

namespace jigsaw {
namespace core {

Pmf
bayesianUpdate(const Pmf &prior, const Marginal &m)
{
    fatalIf(m.qubits.empty(), "bayesianUpdate: empty marginal subset");
    fatalIf(static_cast<int>(m.qubits.size()) != m.local.nQubits(),
            "bayesianUpdate: subset/local-PMF size mismatch");
    for (int q : m.qubits) {
        fatalIf(q < 0 || q >= prior.nQubits(),
                "bayesianUpdate: subset bit outside the global PMF");
    }

    // Step 1: bucket the prior outcomes by their value on the subset
    // bits, tracking each bucket's total prior mass (the normalizer
    // for the update coefficients of Step 2).
    std::unordered_map<BasisState, double> bucket_mass;
    bucket_mass.reserve(prior.support());
    for (const auto &[outcome, p] : prior.probabilities())
        bucket_mass[extractBits(outcome, m.qubits)] += p;

    // Steps 2-3: posterior[outcome] = coefficient * pry / (1 - pry),
    // where coefficient is the outcome's share of its bucket. Global
    // outcomes whose subset value never appears in the local PMF keep
    // their prior probability (Algorithm 1 initializes Po = P).
    Pmf posterior = prior;
    for (const auto &[outcome, p] : prior.probabilities()) {
        const BasisState key = extractBits(outcome, m.qubits);
        const double pry = m.local.prob(key);
        if (pry <= 0.0)
            continue;
        const double mass = bucket_mass[key];
        if (mass <= 0.0)
            continue;
        const double coefficient = p / mass;
        const double clamped = std::min(pry, 1.0 - 1e-12);
        posterior.set(outcome, coefficient * clamped / (1.0 - clamped));
    }
    posterior.normalize();
    return posterior;
}

Pmf
bayesianReconstruct(const Pmf &global,
                    const std::vector<Marginal> &marginals,
                    const ReconstructionOptions &options)
{
    if (marginals.empty())
        return global;

    Pmf output = global;
    for (int round = 0; round < options.maxRounds; ++round) {
        // One Bayesian_Reconstruction call: all marginals update the
        // same prior (the previous round's output), and the posteriors
        // are summed into it. Updates are independent, so order does
        // not matter (paper Section 4.3).
        const Pmf prior = output;
        Pmf accumulated = prior;
        for (const Marginal &m : marginals) {
            const Pmf posterior = bayesianUpdate(prior, m);
            for (const auto &[outcome, p] : posterior.probabilities())
                accumulated.accumulate(outcome, p);
        }
        accumulated.normalize();

        const double moved = hellingerDistance(output, accumulated);
        output = std::move(accumulated);
        if (moved < options.tolerance)
            break;
    }
    return output;
}

Pmf
multiLayerReconstruct(const Pmf &global,
                      const std::vector<Marginal> &marginals,
                      const ReconstructionOptions &options)
{
    // Group by subset size, then apply the layers in the configured
    // order (paper default: largest first).
    std::map<int, std::vector<Marginal>> by_size;
    for (const Marginal &m : marginals)
        by_size[static_cast<int>(m.qubits.size())].push_back(m);

    Pmf output = global;
    if (options.layerOrder == LayerOrder::TopDown) {
        for (auto it = by_size.rbegin(); it != by_size.rend(); ++it)
            output = bayesianReconstruct(output, it->second, options);
    } else {
        for (auto it = by_size.begin(); it != by_size.end(); ++it)
            output = bayesianReconstruct(output, it->second, options);
    }
    return output;
}

} // namespace core
} // namespace jigsaw
