#include "core/bayesian.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>

#include "common/error.h"
#include "common/parallel.h"

namespace jigsaw {
namespace core {

namespace {

void
checkMarginal(const Pmf &prior, const Marginal &m)
{
    fatalIf(m.qubits.empty(), "bayesianUpdate: empty marginal subset");
    fatalIf(static_cast<int>(m.qubits.size()) != m.local.nQubits(),
            "bayesianUpdate: subset/local-PMF size mismatch");
    for (int q : m.qubits) {
        fatalIf(q < 0 || q >= prior.nQubits(),
                "bayesianUpdate: subset bit outside the global PMF");
    }
}

/** Odds factor of a local probability, clamped below certainty. */
inline double
evidenceOdds(double pry)
{
    const double clamped = std::min(pry, 1.0 - 1e-12);
    return clamped / (1.0 - clamped);
}

/**
 * A marginal compiled against a fixed outcome list: each outcome's
 * subset key is resolved once to a dense bucket id, and each bucket
 * carries its precomputed evidence odds (or "keep prior" when the
 * local PMF has no mass there). Valid for every round because
 * reconstruction never grows the support.
 */
struct IndexedMarginal
{
    std::vector<std::uint32_t> bucketOf; ///< Outcome index -> bucket.
    std::vector<double> odds; ///< Bucket -> odds; < 0 keeps the prior.
    std::size_t nBuckets = 0;
};

IndexedMarginal
indexMarginal(const std::vector<BasisState> &outcomes, const Marginal &m,
              double evidence_threshold)
{
    IndexedMarginal idx;
    idx.bucketOf.resize(outcomes.size());
    std::unordered_map<BasisState, std::uint32_t> bucket_of_key;
    bucket_of_key.reserve(1ULL << std::min<std::size_t>(m.qubits.size(),
                                                        16));
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const BasisState key = extractBits(outcomes[i], m.qubits);
        const auto [it, inserted] = bucket_of_key.emplace(
            key, static_cast<std::uint32_t>(idx.odds.size()));
        if (inserted) {
            const double pry = m.local.prob(key);
            idx.odds.push_back(pry > evidence_threshold
                                   ? evidenceOdds(pry)
                                   : -1.0);
        }
        idx.bucketOf[i] = it->second;
    }
    idx.nBuckets = idx.odds.size();
    return idx;
}

/** Outcomes per shard in the sharded round path. Fixed (independent
 *  of the thread count) so shard boundaries — and therefore every
 *  reduction's grouping — are deterministic. */
constexpr std::size_t kShardSize = 1ULL << 14;

/** Supports at least this large take the sharded path under Auto. */
constexpr std::size_t kShardAutoThreshold = 1ULL << 17;

/**
 * The per-marginal round loop: one posterior vector per thread, the
 * posterior sum into the prior done serially in marginal order. Every
 * dense vector pass dispatches through the kernel table @p kt.
 */
void
perMarginalRounds(std::vector<double> &cur,
                  const std::vector<IndexedMarginal> &indexed,
                  const ReconstructionOptions &options,
                  const simd::KernelTable &kt)
{
    const std::size_t n = cur.size();
    const std::size_t n_m = indexed.size();
    std::vector<std::vector<double>> posts(
        n_m, std::vector<double>(n, 0.0));

    std::vector<double> accum(n);
    for (int round = 0; round < options.maxRounds; ++round) {
        // One Bayesian_Reconstruction call: all marginals update the
        // same prior (the previous round's output) independently —
        // computed in parallel — and the normalized posteriors are
        // summed into it in marginal order, so the result is
        // identical however many threads ran.
        parallelFor(0, n_m, 1, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t mi = lo; mi < hi; ++mi) {
                const IndexedMarginal &im = indexed[mi];
                std::vector<double> &post = posts[mi];
                std::vector<double> mass(im.nBuckets, 0.0);
                kt.accumulateBuckets(im.bucketOf.data(), cur.data(), 0,
                                     n, mass.data());
                const double post_sum = kt.posteriorUpdate(
                    im.bucketOf.data(), im.odds.data(), mass.data(),
                    cur.data(), post.data(), 0, n);
                if (post_sum > 0.0)
                    kt.scale(post.data(), 1.0 / post_sum, 0, n);
            }
        });

        accum = cur;
        for (std::size_t mi = 0; mi < n_m; ++mi)
            kt.axpy(accum.data(), posts[mi].data(), 1.0, 0, n);
        const double total = kt.sum(accum.data(), 0, n);

        // Normalize and measure the move in one fused pass (inv_total
        // of 1.0 — the degenerate all-zero case — leaves the vector
        // bitwise untouched).
        const double inv_total = total > 0.0 ? 1.0 / total : 1.0;
        const double bc = kt.normalizeBhattacharyya(
            accum.data(), cur.data(), inv_total, 0, n);
        const double moved = std::sqrt(std::max(0.0, 1.0 - bc));
        cur.swap(accum);
        if (moved < options.tolerance)
            break;
    }
}

/**
 * The sharded round loop: the flat outcome vector is split into
 * fixed-size shards; each phase runs shards in parallel and reduces
 * per-shard partials (bucket masses, posterior sums, totals, the
 * Bhattacharyya sum) serially in shard order. Scales rounds on large
 * supports, where the marginal count no longer provides parallelism
 * relative to the per-outcome work. Every dense vector pass
 * dispatches through the kernel table @p kt.
 */
void
shardedRounds(std::vector<double> &cur,
              const std::vector<IndexedMarginal> &indexed,
              const ReconstructionOptions &options,
              const simd::KernelTable &kt)
{
    const std::size_t n = cur.size();
    const std::size_t n_m = indexed.size();
    const std::size_t n_shards = (n + kShardSize - 1) / kShardSize;
    const auto shard_range = [n](std::size_t s) {
        const std::size_t lo = s * kShardSize;
        return std::pair<std::size_t, std::size_t>(
            lo, std::min(n, lo + kShardSize));
    };

    std::vector<std::vector<double>> posts(
        n_m, std::vector<double>(n, 0.0));
    // Per-shard partial bucket masses, one flat [shard][bucket] array
    // per marginal, plus the reduced per-bucket masses.
    std::vector<std::vector<double>> partial_mass(n_m);
    std::vector<std::vector<double>> mass(n_m);
    for (std::size_t mi = 0; mi < n_m; ++mi) {
        partial_mass[mi].resize(n_shards * indexed[mi].nBuckets);
        mass[mi].resize(indexed[mi].nBuckets);
    }
    std::vector<double> post_scale(n_m);
    std::vector<double> partial_post_sum(n_m * n_shards);
    std::vector<double> shard_total(n_shards);
    std::vector<double> shard_bc(n_shards);
    std::vector<double> accum(n);

    for (int round = 0; round < options.maxRounds; ++round) {
        // Phase 1: per-shard partial bucket masses, reduced in shard
        // order so the grouping is independent of the thread count.
        parallelFor(0, n_shards, 1, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t s = lo; s < hi; ++s) {
                const auto [i0, i1] = shard_range(s);
                for (std::size_t mi = 0; mi < n_m; ++mi) {
                    const IndexedMarginal &im = indexed[mi];
                    double *pm =
                        partial_mass[mi].data() + s * im.nBuckets;
                    std::fill(pm, pm + im.nBuckets, 0.0);
                    kt.accumulateBuckets(im.bucketOf.data(), cur.data(),
                                         i0, i1, pm);
                }
            }
        });
        parallelFor(0, n_m, 1, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t mi = lo; mi < hi; ++mi) {
                const std::size_t n_b = indexed[mi].nBuckets;
                for (std::size_t b = 0; b < n_b; ++b) {
                    double m = 0.0;
                    for (std::size_t s = 0; s < n_shards; ++s)
                        m += partial_mass[mi][s * n_b + b];
                    mass[mi][b] = m;
                }
            }
        });

        // Phase 2: unnormalized posteriors with per-shard partial
        // sums; each marginal's normalizer reduces in shard order.
        parallelFor(0, n_shards, 1, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t s = lo; s < hi; ++s) {
                const auto [i0, i1] = shard_range(s);
                for (std::size_t mi = 0; mi < n_m; ++mi) {
                    const IndexedMarginal &im = indexed[mi];
                    partial_post_sum[mi * n_shards + s] =
                        kt.posteriorUpdate(im.bucketOf.data(),
                                           im.odds.data(),
                                           mass[mi].data(), cur.data(),
                                           posts[mi].data(), i0, i1);
                }
            }
        });
        for (std::size_t mi = 0; mi < n_m; ++mi) {
            double post_sum = 0.0;
            for (std::size_t s = 0; s < n_shards; ++s)
                post_sum += partial_post_sum[mi * n_shards + s];
            post_scale[mi] = post_sum > 0.0 ? 1.0 / post_sum : 0.0;
        }

        // Phase 3: sum the scaled posteriors into the prior. The
        // per-outcome addition order (prior, then marginal 0, 1, ...)
        // matches the per-marginal path exactly; only the totals
        // reduce per shard. A zero post_scale (degenerate all-zero
        // posterior sum) keeps the unscaled posterior, which axpy
        // with a = 1.0 reproduces exactly.
        parallelFor(0, n_shards, 1, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t s = lo; s < hi; ++s) {
                const auto [i0, i1] = shard_range(s);
                std::copy(cur.begin() + i0, cur.begin() + i1,
                          accum.begin() + i0);
                for (std::size_t mi = 0; mi < n_m; ++mi) {
                    const double scale = post_scale[mi];
                    kt.axpy(accum.data(), posts[mi].data(),
                            scale > 0.0 ? scale : 1.0, i0, i1);
                }
                shard_total[s] = kt.sum(accum.data(), i0, i1);
            }
        });
        double total = 0.0;
        for (std::size_t s = 0; s < n_shards; ++s)
            total += shard_total[s];

        // Phase 4: normalize and measure the move in one sharded pass.
        const double inv_total = total > 0.0 ? 1.0 / total : 1.0;
        parallelFor(0, n_shards, 1, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t s = lo; s < hi; ++s) {
                const auto [i0, i1] = shard_range(s);
                shard_bc[s] = kt.normalizeBhattacharyya(
                    accum.data(), cur.data(), inv_total, i0, i1);
            }
        });
        double bc = 0.0;
        for (std::size_t s = 0; s < n_shards; ++s)
            bc += shard_bc[s];

        const double moved = std::sqrt(std::max(0.0, 1.0 - bc));
        cur.swap(accum);
        if (moved < options.tolerance)
            break;
    }
}

} // namespace

Pmf
bayesianUpdate(const Pmf &prior, const Marginal &m,
               double evidence_threshold)
{
    checkMarginal(prior, m);

    // Step 1: bucket the prior outcomes by their value on the subset
    // bits, tracking each bucket's total prior mass (the normalizer
    // for the update coefficients of Step 2) and whether the local
    // PMF has observable evidence for it.
    std::unordered_map<BasisState, double> bucket_mass;
    bucket_mass.reserve(prior.support());
    bool covers_all = true;
    for (const auto &[outcome, p] : prior.probabilities()) {
        const BasisState key = extractBits(outcome, m.qubits);
        bucket_mass[key] += p;
        if (m.local.prob(key) <= evidence_threshold)
            covers_all = false;
    }

    // Steps 2-3: posterior[outcome] = coefficient * pry / (1 - pry),
    // where coefficient is the outcome's share of its bucket. Global
    // outcomes whose subset value carries no local mass (absent, or at
    // or below the pruning threshold) keep their prior probability
    // (Algorithm 1 initializes Po = P). When every bucket has
    // evidence, no prior entry survives, so start from an empty PMF
    // instead of copying the whole prior just to overwrite it.
    Pmf posterior = covers_all ? Pmf(prior.nQubits()) : prior;
    for (const auto &[outcome, p] : prior.probabilities()) {
        const BasisState key = extractBits(outcome, m.qubits);
        const double pry = m.local.prob(key);
        if (pry <= evidence_threshold)
            continue;
        const double mass = bucket_mass[key];
        if (mass <= 0.0)
            continue;
        posterior.set(outcome, (p / mass) * evidenceOdds(pry));
    }
    posterior.normalize();
    return posterior;
}

Pmf
bayesianReconstruct(const Pmf &global,
                    const std::vector<Marginal> &marginals,
                    const ReconstructionOptions &options)
{
    if (marginals.empty() || global.support() == 0)
        return global;
    for (const Marginal &m : marginals)
        checkMarginal(global, m);

    // Flatten the global PMF once; outcome order is sorted so the
    // result is deterministic whatever the hash layout was.
    std::vector<BasisState> outcomes;
    outcomes.reserve(global.support());
    for (const auto &[outcome, p] : global.probabilities())
        outcomes.push_back(outcome);
    std::sort(outcomes.begin(), outcomes.end());

    const std::size_t n = outcomes.size();
    std::vector<double> cur(n);
    for (std::size_t i = 0; i < n; ++i)
        cur[i] = global.prob(outcomes[i]);

    std::vector<IndexedMarginal> indexed;
    indexed.reserve(marginals.size());
    for (const Marginal &m : marginals)
        indexed.push_back(
            indexMarginal(outcomes, m, options.evidenceThreshold));

    const simd::KernelTable &kt =
        options.kernels != nullptr ? *options.kernels
                                   : simd::activeKernels();
    const bool sharded =
        options.shardMode == ShardMode::Always ||
        (options.shardMode == ShardMode::Auto &&
         n >= kShardAutoThreshold);
    if (sharded)
        shardedRounds(cur, indexed, options, kt);
    else
        perMarginalRounds(cur, indexed, options, kt);

    Pmf output(global.nQubits());
    for (std::size_t i = 0; i < n; ++i)
        output.set(outcomes[i], cur[i]);
    return output;
}

Pmf
multiLayerReconstruct(const Pmf &global,
                      const std::vector<Marginal> &marginals,
                      const ReconstructionOptions &options)
{
    // Group by subset size, then apply the layers in the configured
    // order (paper default: largest first).
    std::map<int, std::vector<Marginal>> by_size;
    for (const Marginal &m : marginals)
        by_size[static_cast<int>(m.qubits.size())].push_back(m);

    Pmf output = global;
    if (options.layerOrder == LayerOrder::TopDown) {
        for (auto it = by_size.rbegin(); it != by_size.rend(); ++it)
            output = bayesianReconstruct(output, it->second, options);
    } else {
        for (auto it = by_size.begin(); it != by_size.end(); ++it)
            output = bayesianReconstruct(output, it->second, options);
    }
    return output;
}

} // namespace core
} // namespace jigsaw
