/**
 * @file
 * Device connectivity: coupling maps and shortest-path distances.
 */
#ifndef JIGSAW_DEVICE_TOPOLOGY_H
#define JIGSAW_DEVICE_TOPOLOGY_H

#include <utility>
#include <vector>

namespace jigsaw {
namespace device {

/** An undirected qubit-coupling edge. */
using Edge = std::pair<int, int>;

/**
 * Undirected coupling graph of a quantum device with precomputed
 * all-pairs shortest-path distances (used by SABRE's heuristic).
 */
class Topology
{
  public:
    /** Build from a qubit count and an undirected edge list. */
    Topology(int n_qubits, std::vector<Edge> edges);

    /** Number of physical qubits. */
    int nQubits() const { return nQubits_; }

    /** Undirected coupling edges (each listed once, a < b). */
    const std::vector<Edge> &edges() const { return edges_; }

    /** Physical qubits adjacent to @p q. */
    const std::vector<int> &neighbors(int q) const;

    /** True when @p a and @p b share a coupling edge. */
    bool areCoupled(int a, int b) const;

    /** Hop distance between @p a and @p b (BFS; -1 if disconnected). */
    int distance(int a, int b) const;

    /** True when every qubit can reach every other qubit. */
    bool isConnected() const;

    /** Index of the edge (a, b) in edges(); -1 when not coupled. */
    int edgeIndex(int a, int b) const;

  private:
    void computeDistances();

    int nQubits_;
    std::vector<Edge> edges_;
    std::vector<std::vector<int>> adjacency_;
    std::vector<std::vector<int>> distance_;
};

/** Simple path a-b-c-...; useful for tests. */
Topology linearTopology(int n_qubits);

/** Full rows x cols grid with nearest-neighbor coupling. */
Topology gridTopology(int rows, int cols);

/**
 * IBM heavy-hex lattice in the 27-qubit Falcon arrangement (the
 * layout of IBMQ-Toronto, IBMQ-Paris, IBMQ-Montreal, ...).
 */
Topology heavyHex27();

/**
 * IBM heavy-hex lattice in the 65-qubit Hummingbird arrangement (the
 * layout of IBMQ-Manhattan): five rows of 10-11 qubits joined by
 * three bridge qubits between consecutive rows.
 */
Topology heavyHex65();

} // namespace device
} // namespace jigsaw

#endif // JIGSAW_DEVICE_TOPOLOGY_H
