#include "device/calibration.h"

#include <algorithm>
#include <limits>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"

namespace jigsaw {
namespace device {

Calibration::Calibration(int n_qubits, int n_edges)
    : qubits_(static_cast<std::size_t>(n_qubits)),
      edgeErrors_(static_cast<std::size_t>(n_edges), 0.0)
{
    fatalIf(n_qubits < 1, "Calibration: need at least one qubit");
}

const QubitCalibration &
Calibration::qubit(int q) const
{
    fatalIf(q < 0 || q >= nQubits(), "Calibration: qubit out of range");
    return qubits_[static_cast<std::size_t>(q)];
}

QubitCalibration &
Calibration::qubit(int q)
{
    fatalIf(q < 0 || q >= nQubits(), "Calibration: qubit out of range");
    return qubits_[static_cast<std::size_t>(q)];
}

double
Calibration::edgeError(int e) const
{
    fatalIf(e < 0 || e >= static_cast<int>(edgeErrors_.size()),
            "Calibration: edge out of range");
    return edgeErrors_[static_cast<std::size_t>(e)];
}

void
Calibration::setEdgeError(int e, double error)
{
    fatalIf(e < 0 || e >= static_cast<int>(edgeErrors_.size()),
            "Calibration: edge out of range");
    edgeErrors_[static_cast<std::size_t>(e)] = error;
}

double
Calibration::effectiveReadoutError(int q, int simultaneous, int bit) const
{
    const QubitCalibration &cal = qubit(q);
    const double base = bit ? cal.readoutError10 : cal.readoutError01;
    const double extra =
        cal.crosstalkGamma * static_cast<double>(std::max(0,
                                                          simultaneous - 1));
    return std::clamp(base + extra, 0.0, 0.5);
}

std::vector<double>
Calibration::readoutErrors() const
{
    std::vector<double> errors;
    errors.reserve(qubits_.size());
    for (const auto &q : qubits_)
        errors.push_back(q.meanReadoutError());
    return errors;
}

std::vector<int>
Calibration::bestReadoutQubits(int k) const
{
    std::vector<int> order(qubits_.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [this](int a, int b) {
        const double ea = qubits_[static_cast<std::size_t>(a)]
                              .meanReadoutError();
        const double eb = qubits_[static_cast<std::size_t>(b)]
                              .meanReadoutError();
        if (ea != eb)
            return ea < eb;
        return a < b;
    });
    order.resize(static_cast<std::size_t>(
        std::min<int>(k, static_cast<int>(order.size()))));
    return order;
}

namespace {

/**
 * Farthest-point traversal of the coupling graph: each step picks the
 * qubit whose minimum distance to all previously chosen qubits is
 * largest. Assigning sorted (best-first) readout errors along this
 * order scatters the good qubits across the device, so every
 * connected region of more than a few qubits contains above-median
 * readout error — the paper's Section 3.2 observation.
 */
std::vector<int>
farthestPointOrder(const Topology &topology)
{
    const int n = topology.nQubits();
    std::vector<int> order;
    std::vector<bool> chosen(static_cast<std::size_t>(n), false);
    order.reserve(static_cast<std::size_t>(n));
    order.push_back(0);
    chosen[0] = true;
    while (static_cast<int>(order.size()) < n) {
        int best = -1;
        int best_dist = -1;
        for (int q = 0; q < n; ++q) {
            if (chosen[static_cast<std::size_t>(q)])
                continue;
            int min_dist = std::numeric_limits<int>::max();
            for (int c : order)
                min_dist = std::min(min_dist, topology.distance(q, c));
            if (min_dist > best_dist) {
                best_dist = min_dist;
                best = q;
            }
        }
        order.push_back(best);
        chosen[static_cast<std::size_t>(best)] = true;
    }
    return order;
}

} // namespace

Calibration
synthesizeCalibration(const Topology &topology,
                      const CalibrationProfile &profile,
                      std::uint64_t seed)
{
    Rng rng(seed);
    Calibration cal(topology.nQubits(),
                    static_cast<int>(topology.edges().size()));

    const double readout_mu = std::log(profile.readoutMedian);
    const double gamma_mu = std::log(profile.gammaMedian);
    const double e1_mu = std::log(profile.error1qMedian);
    const double e2_mu = std::log(profile.error2qMedian);

    // Sample the per-qubit mean readout errors, then decide which
    // physical qubit receives which value.
    std::vector<double> readout_errors;
    readout_errors.reserve(static_cast<std::size_t>(topology.nQubits()));
    for (int q = 0; q < topology.nQubits(); ++q) {
        readout_errors.push_back(std::clamp(
            rng.logNormal(readout_mu, profile.readoutSigma),
            profile.readoutFloor, profile.readoutCeil));
    }
    std::vector<int> assignment(static_cast<std::size_t>(
        topology.nQubits()));
    if (profile.scatterReadout) {
        std::sort(readout_errors.begin(), readout_errors.end());
        assignment = farthestPointOrder(topology);
    } else {
        std::iota(assignment.begin(), assignment.end(), 0);
    }

    for (int i = 0; i < topology.nQubits(); ++i) {
        const int q = assignment[static_cast<std::size_t>(i)];
        QubitCalibration &qc = cal.qubit(q);
        const double mean_err =
            readout_errors[static_cast<std::size_t>(i)];
        // Split the state-averaged error asymmetrically: reading a
        // prepared |1> fails more often because the qubit can relax
        // to |0> during the readout pulse.
        const double ratio = profile.asymmetry;
        qc.readoutError01 = 2.0 * mean_err / (1.0 + ratio);
        qc.readoutError10 = ratio * qc.readoutError01;
        qc.crosstalkGamma = std::min(
            rng.logNormal(gamma_mu, profile.gammaSigma), profile.gammaCeil);
        qc.error1q = rng.logNormal(e1_mu, profile.error1qSigma);
    }

    for (std::size_t e = 0; e < topology.edges().size(); ++e) {
        cal.setEdgeError(static_cast<int>(e),
                         std::min(rng.logNormal(e2_mu, profile.error2qSigma),
                                  0.15));
    }

    cal.setCorrelatedPairError(profile.correlatedPairError);
    return cal;
}

} // namespace device
} // namespace jigsaw
