#include "device/topology.h"

#include <algorithm>
#include <queue>

#include "common/error.h"

namespace jigsaw {
namespace device {

Topology::Topology(int n_qubits, std::vector<Edge> edges)
    : nQubits_(n_qubits), edges_(std::move(edges))
{
    fatalIf(n_qubits < 1, "Topology: need at least one qubit");
    adjacency_.resize(static_cast<std::size_t>(n_qubits));
    for (auto &e : edges_) {
        if (e.first > e.second)
            std::swap(e.first, e.second);
        fatalIf(e.first < 0 || e.second >= n_qubits || e.first == e.second,
                "Topology: invalid edge");
        adjacency_[static_cast<std::size_t>(e.first)].push_back(e.second);
        adjacency_[static_cast<std::size_t>(e.second)].push_back(e.first);
    }
    std::sort(edges_.begin(), edges_.end());
    for (auto &adj : adjacency_)
        std::sort(adj.begin(), adj.end());
    computeDistances();
}

const std::vector<int> &
Topology::neighbors(int q) const
{
    fatalIf(q < 0 || q >= nQubits_, "Topology: qubit out of range");
    return adjacency_[static_cast<std::size_t>(q)];
}

bool
Topology::areCoupled(int a, int b) const
{
    if (a > b)
        std::swap(a, b);
    return std::binary_search(edges_.begin(), edges_.end(), Edge{a, b});
}

int
Topology::distance(int a, int b) const
{
    fatalIf(a < 0 || a >= nQubits_ || b < 0 || b >= nQubits_,
            "Topology: qubit out of range");
    return distance_[static_cast<std::size_t>(a)]
                    [static_cast<std::size_t>(b)];
}

bool
Topology::isConnected() const
{
    for (int q = 1; q < nQubits_; ++q) {
        if (distance(0, q) < 0)
            return false;
    }
    return true;
}

int
Topology::edgeIndex(int a, int b) const
{
    if (a > b)
        std::swap(a, b);
    const auto it = std::lower_bound(edges_.begin(), edges_.end(),
                                     Edge{a, b});
    if (it == edges_.end() || *it != Edge{a, b})
        return -1;
    return static_cast<int>(it - edges_.begin());
}

void
Topology::computeDistances()
{
    const auto n = static_cast<std::size_t>(nQubits_);
    distance_.assign(n, std::vector<int>(n, -1));
    for (int src = 0; src < nQubits_; ++src) {
        auto &dist = distance_[static_cast<std::size_t>(src)];
        dist[static_cast<std::size_t>(src)] = 0;
        std::queue<int> frontier;
        frontier.push(src);
        while (!frontier.empty()) {
            const int u = frontier.front();
            frontier.pop();
            for (int v : adjacency_[static_cast<std::size_t>(u)]) {
                if (dist[static_cast<std::size_t>(v)] < 0) {
                    dist[static_cast<std::size_t>(v)] =
                        dist[static_cast<std::size_t>(u)] + 1;
                    frontier.push(v);
                }
            }
        }
    }
}

Topology
linearTopology(int n_qubits)
{
    std::vector<Edge> edges;
    for (int q = 0; q + 1 < n_qubits; ++q)
        edges.emplace_back(q, q + 1);
    return Topology(n_qubits, std::move(edges));
}

Topology
gridTopology(int rows, int cols)
{
    fatalIf(rows < 1 || cols < 1, "gridTopology: invalid shape");
    std::vector<Edge> edges;
    auto id = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                edges.emplace_back(id(r, c), id(r, c + 1));
            if (r + 1 < rows)
                edges.emplace_back(id(r, c), id(r + 1, c));
        }
    }
    return Topology(rows * cols, std::move(edges));
}

Topology
heavyHex27()
{
    // The 27-qubit Falcon heavy-hex arrangement used by IBMQ-Toronto
    // and IBMQ-Paris (28 coupling edges).
    std::vector<Edge> edges = {
        {0, 1},   {1, 2},   {1, 4},   {2, 3},   {3, 5},   {4, 7},
        {5, 8},   {6, 7},   {7, 10},  {8, 9},   {8, 11},  {10, 12},
        {11, 14}, {12, 13}, {12, 15}, {13, 14}, {14, 16}, {15, 18},
        {16, 19}, {17, 18}, {18, 21}, {19, 20}, {19, 22}, {21, 23},
        {22, 25}, {23, 24}, {24, 25}, {25, 26},
    };
    return Topology(27, std::move(edges));
}

Topology
heavyHex65()
{
    // 65-qubit Hummingbird heavy-hex arrangement (IBMQ-Manhattan
    // style): rows 0-9, 13-23, 27-37, 41-51, 55-64 joined by bridge
    // qubits {10,11,12}, {24,25,26}, {38,39,40}, {52,53,54}.
    std::vector<Edge> edges;
    auto chain = [&edges](int first, int last) {
        for (int q = first; q < last; ++q)
            edges.emplace_back(q, q + 1);
    };
    chain(0, 9);    // row 0: 10 qubits
    chain(13, 23);  // row 1: 11 qubits
    chain(27, 37);  // row 2: 11 qubits
    chain(41, 51);  // row 3: 11 qubits
    chain(55, 64);  // row 4: 10 qubits

    // Bridges alternate their attachment offsets row to row, which is
    // what gives the heavy-hex lattice its staggered hexagons.
    edges.emplace_back(0, 10);
    edges.emplace_back(4, 11);
    edges.emplace_back(8, 12);
    edges.emplace_back(10, 13);
    edges.emplace_back(11, 17);
    edges.emplace_back(12, 21);

    edges.emplace_back(15, 24);
    edges.emplace_back(19, 25);
    edges.emplace_back(23, 26);
    edges.emplace_back(24, 29);
    edges.emplace_back(25, 33);
    edges.emplace_back(26, 37);

    edges.emplace_back(27, 38);
    edges.emplace_back(31, 39);
    edges.emplace_back(35, 40);
    edges.emplace_back(38, 41);
    edges.emplace_back(39, 45);
    edges.emplace_back(40, 49);

    edges.emplace_back(43, 52);
    edges.emplace_back(47, 53);
    edges.emplace_back(51, 54);
    edges.emplace_back(52, 56);
    edges.emplace_back(53, 60);
    edges.emplace_back(54, 64);

    return Topology(65, std::move(edges));
}

} // namespace device
} // namespace jigsaw
