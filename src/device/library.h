/**
 * @file
 * Prebuilt device models matching the machines the paper evaluates on.
 *
 * Calibration values are synthetic but seeded and tuned so that the
 * published per-device statistics are reproduced (see DESIGN.md,
 * "Substitutions"): IBMQ-Toronto's readout-error spread comes from the
 * paper's Fig 3, the Sycamore model from Table 1.
 */
#ifndef JIGSAW_DEVICE_LIBRARY_H
#define JIGSAW_DEVICE_LIBRARY_H

#include <string>
#include <vector>

#include "device/device_model.h"

namespace jigsaw {
namespace device {

/** 27-qubit heavy-hex model of IBMQ-Toronto. */
DeviceModel toronto();

/** 27-qubit heavy-hex model of IBMQ-Paris. */
DeviceModel paris();

/** 65-qubit heavy-hex model of IBMQ-Manhattan. */
DeviceModel manhattan();

/** 53-qubit grid model of Google Sycamore (Table 1 statistics). */
DeviceModel sycamore();

/** The three IBMQ evaluation devices, in the paper's order. */
std::vector<DeviceModel> evaluationDevices();

/** Look up one of the named devices above ("ibmq-toronto", ...). */
DeviceModel byName(const std::string &name);

} // namespace device
} // namespace jigsaw

#endif // JIGSAW_DEVICE_LIBRARY_H
