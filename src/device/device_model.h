/**
 * @file
 * DeviceModel bundles a topology with its calibration.
 */
#ifndef JIGSAW_DEVICE_DEVICE_MODEL_H
#define JIGSAW_DEVICE_DEVICE_MODEL_H

#include <cstdint>
#include <string>
#include <utility>

#include "device/calibration.h"
#include "device/topology.h"

namespace jigsaw {
namespace device {

/**
 * A named quantum device: coupling graph plus error calibration.
 * Instances are immutable after construction and cheap to share by
 * const reference.
 */
class DeviceModel
{
  public:
    /** Assemble a device from its parts. */
    DeviceModel(std::string name, Topology topology, Calibration calibration);

    /** Device name, e.g. "ibmq-toronto". */
    const std::string &name() const { return name_; }

    /** Coupling graph. */
    const Topology &topology() const { return topology_; }

    /** Error calibration. */
    const Calibration &calibration() const { return calibration_; }

    /** Number of physical qubits. */
    int nQubits() const { return topology_.nQubits(); }

    /**
     * Content hash over the name, coupling graph, and every
     * calibration value (exact double bit patterns). Two devices with
     * equal fingerprints produce identical noise derivations for
     * identical circuits, which is what the cross-program merge pass
     * keys executor sharing on.
     */
    std::uint64_t fingerprint() const;

  private:
    std::string name_;
    Topology topology_;
    Calibration calibration_;
};

} // namespace device
} // namespace jigsaw

#endif // JIGSAW_DEVICE_DEVICE_MODEL_H
