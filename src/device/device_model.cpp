#include "device/device_model.h"

#include "common/error.h"
#include "common/fnv.h"

namespace jigsaw {
namespace device {

DeviceModel::DeviceModel(std::string name, Topology topology,
                         Calibration calibration)
    : name_(std::move(name)),
      topology_(std::move(topology)),
      calibration_(std::move(calibration))
{
    fatalIf(topology_.nQubits() != calibration_.nQubits(),
            "DeviceModel: topology/calibration qubit count mismatch");
}

std::uint64_t
DeviceModel::fingerprint() const
{
    std::uint64_t h = kFnvOffsetBasis;
    for (char c : name_)
        fnvMixWord(h, static_cast<std::uint64_t>(
                          static_cast<unsigned char>(c)));
    fnvMixWord(h, static_cast<std::uint64_t>(nQubits()));
    fnvMixWord(h, topology_.edges().size());
    for (const Edge &e : topology_.edges()) {
        fnvMixWord(h, static_cast<std::uint64_t>(e.first));
        fnvMixWord(h, static_cast<std::uint64_t>(e.second));
    }
    for (int q = 0; q < nQubits(); ++q) {
        const QubitCalibration &cal = calibration_.qubit(q);
        fnvMixDouble(h, cal.readoutError01);
        fnvMixDouble(h, cal.readoutError10);
        fnvMixDouble(h, cal.error1q);
        fnvMixDouble(h, cal.crosstalkGamma);
    }
    for (std::size_t e = 0; e < topology_.edges().size(); ++e)
        fnvMixDouble(h, calibration_.edgeError(static_cast<int>(e)));
    fnvMixDouble(h, calibration_.correlatedPairError());
    return h;
}

} // namespace device
} // namespace jigsaw
