#include "device/device_model.h"

#include "common/error.h"

namespace jigsaw {
namespace device {

DeviceModel::DeviceModel(std::string name, Topology topology,
                         Calibration calibration)
    : name_(std::move(name)),
      topology_(std::move(topology)),
      calibration_(std::move(calibration))
{
    fatalIf(topology_.nQubits() != calibration_.nQubits(),
            "DeviceModel: topology/calibration qubit count mismatch");
}

} // namespace device
} // namespace jigsaw
