#include "device/library.h"

#include "common/error.h"

namespace jigsaw {
namespace device {

namespace {

/** Profile matching the paper's Fig 3 statistics for IBMQ-Toronto
 *  (mean 4.70%, median 2.76%, min 0.85%, max 22.2%). */
CalibrationProfile
falconProfile()
{
    CalibrationProfile p;
    p.readoutMedian = 0.0276;
    p.readoutSigma = 1.03;
    p.readoutFloor = 0.0085;
    p.readoutCeil = 0.222;
    p.asymmetry = 1.5; // Manhattan: P(err|0)=2.3%, P(err|1)=3.6%.
    return p;
}

/** Profile matching Table 1 (Google Sycamore isolated readout:
 *  min 2.6%, avg 6.14%, median 5.7%, max 11.7%). */
CalibrationProfile
sycamoreProfile()
{
    CalibrationProfile p;
    p.readoutMedian = 0.057;
    p.readoutSigma = 0.39;
    p.readoutFloor = 0.026;
    p.readoutCeil = 0.117;
    p.asymmetry = 1.4;
    // Simultaneous 53-qubit readout raises the average error from
    // 6.14% to 7.73% and the max from 11.7% to 20.9%: a small median
    // gamma with a heavy tail.
    p.gammaMedian = 0.00018;
    p.gammaSigma = 1.1;
    p.gammaCeil = 0.0019;
    return p;
}

} // namespace

DeviceModel
toronto()
{
    return DeviceModel("ibmq-toronto", heavyHex27(),
                       synthesizeCalibration(heavyHex27(), falconProfile(),
                                             0x70726f6e746fULL));
}

DeviceModel
paris()
{
    CalibrationProfile p = falconProfile();
    p.readoutMedian = 0.0262;
    p.readoutCeil = 0.19;
    return DeviceModel("ibmq-paris", heavyHex27(),
                       synthesizeCalibration(heavyHex27(), p,
                                             0x7061726973ULL));
}

DeviceModel
manhattan()
{
    CalibrationProfile p = falconProfile();
    p.readoutMedian = 0.0295;
    p.readoutCeil = 0.24;
    // 65-qubit device: slightly weaker 2q gates on average.
    p.error2qMedian = 0.014;
    return DeviceModel("ibmq-manhattan", heavyHex65(),
                       synthesizeCalibration(heavyHex65(), p,
                                             0x6d616e686174ULL));
}

DeviceModel
sycamore()
{
    // 53 active qubits modeled as a 6x9 grid with one corner disabled
    // is close enough structurally; readout statistics follow Table 1.
    Topology grid = gridTopology(6, 9);
    Calibration cal = synthesizeCalibration(grid, sycamoreProfile(),
                                            0x737963616dULL);
    return DeviceModel("google-sycamore", std::move(grid), std::move(cal));
}

std::vector<DeviceModel>
evaluationDevices()
{
    std::vector<DeviceModel> devices;
    devices.push_back(toronto());
    devices.push_back(paris());
    devices.push_back(manhattan());
    return devices;
}

DeviceModel
byName(const std::string &name)
{
    if (name == "ibmq-toronto")
        return toronto();
    if (name == "ibmq-paris")
        return paris();
    if (name == "ibmq-manhattan")
        return manhattan();
    if (name == "google-sycamore")
        return sycamore();
    fatalIf(true, "unknown device: " + name);
    return toronto(); // unreachable
}

} // namespace device
} // namespace jigsaw
