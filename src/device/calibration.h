/**
 * @file
 * Per-device error calibration: readout, gate, and crosstalk rates.
 *
 * Real IBMQ devices publish a daily calibration report; noise-aware
 * compilation and JigSaw's CPM recompilation both consume it. We
 * synthesize calibrations from seeded log-normal distributions tuned
 * to the statistics the paper publishes for each machine (Fig 3 for
 * IBMQ-Toronto, Table 1 for Google Sycamore).
 */
#ifndef JIGSAW_DEVICE_CALIBRATION_H
#define JIGSAW_DEVICE_CALIBRATION_H

#include <cstdint>
#include <vector>

#include "device/topology.h"

namespace jigsaw {
namespace device {

/** Calibration data for a single qubit. */
struct QubitCalibration
{
    double readoutError01 = 0.0; ///< P(read 1 | prepared 0).
    double readoutError10 = 0.0; ///< P(read 0 | prepared 1).
    double error1q = 0.0;        ///< Single-qubit gate error rate.
    /**
     * Measurement-crosstalk coefficient: measuring this qubit together
     * with M-1 others raises its readout error by gamma * (M - 1)
     * (paper Section 3.1: up to +2% at M=5 and +4% at M=10 on IBMQ).
     */
    double crosstalkGamma = 0.0;

    /** State-averaged readout error, (e01 + e10) / 2. */
    double
    meanReadoutError() const
    {
        return 0.5 * (readoutError01 + readoutError10);
    }
};

/** Distribution parameters for synthesizeCalibration(). */
struct CalibrationProfile
{
    double readoutMedian = 0.0276;  ///< Median of mean readout error.
    double readoutSigma = 1.03;     ///< Log-space sigma.
    double readoutFloor = 0.0085;   ///< Clamp: best qubit.
    double readoutCeil = 0.222;     ///< Clamp: worst qubit.
    double asymmetry = 1.5;         ///< e10 / e01 ratio (1-decay bias).
    double gammaMedian = 0.0035;    ///< Crosstalk coefficient median.
    double gammaSigma = 0.75;
    double gammaCeil = 0.0100;
    double error1qMedian = 0.0004;
    double error1qSigma = 0.55;
    double error2qMedian = 0.011;
    double error2qSigma = 0.50;
    /** Probability that a pair of adjacent simultaneous measurements
     *  flips together (correlated-error floor; see DESIGN.md). */
    double correlatedPairError = 0.0015;
    /**
     * Assign the best readout errors to spatially spread-out qubits
     * (farthest-point order). This reproduces the paper's Figure 3
     * observation that low-error qubits are not co-located, so any
     * program beyond a handful of qubits is forced onto above-median
     * readout qubits (Section 3.2).
     */
    bool scatterReadout = true;
};

/**
 * Full device calibration: per-qubit readout/1q data plus per-edge
 * two-qubit gate error rates.
 */
class Calibration
{
  public:
    /** Construct all-zeros calibration for @p n_qubits and @p n_edges. */
    Calibration(int n_qubits, int n_edges);

    /** Per-qubit calibration record. */
    const QubitCalibration &qubit(int q) const;

    /** Mutable access (used by synthesis and tests). */
    QubitCalibration &qubit(int q);

    /** Two-qubit gate error for edge index @p e (see Topology). */
    double edgeError(int e) const;

    /** Set the two-qubit gate error for edge index @p e. */
    void setEdgeError(int e, double error);

    /** Number of qubits covered. */
    int nQubits() const { return static_cast<int>(qubits_.size()); }

    /**
     * Effective readout error of @p q when measured together with
     * @p simultaneous total qubits: base + gamma * (simultaneous - 1),
     * clamped to [0, 0.5] per bit value.
     */
    double effectiveReadoutError(int q, int simultaneous, int bit) const;

    /** Mean of per-qubit state-averaged readout errors. */
    std::vector<double> readoutErrors() const;

    /** Correlated adjacent-measurement flip probability. */
    double correlatedPairError() const { return correlatedPairError_; }

    /** Set the correlated-pair flip probability. */
    void setCorrelatedPairError(double p) { correlatedPairError_ = p; }

    /**
     * Indices of the @p k qubits with the lowest state-averaged
     * readout error, best first.
     */
    std::vector<int> bestReadoutQubits(int k) const;

  private:
    std::vector<QubitCalibration> qubits_;
    std::vector<double> edgeErrors_;
    double correlatedPairError_ = 0.0;
};

/**
 * Sample a calibration for @p topology from @p profile using the
 * deterministic @p seed. Readout errors are log-normal (heavy upper
 * tail, matching the paper's observation that worst-case qubits are
 * ~10x the median) and clamped to the profile's floor/ceiling.
 */
Calibration synthesizeCalibration(const Topology &topology,
                                  const CalibrationProfile &profile,
                                  std::uint64_t seed);

} // namespace device
} // namespace jigsaw

#endif // JIGSAW_DEVICE_CALIBRATION_H
