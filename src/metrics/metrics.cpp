#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace jigsaw {
namespace metrics {

double
pst(const Pmf &observed, const std::vector<BasisState> &correct)
{
    double total = 0.0;
    for (BasisState outcome : correct)
        total += observed.prob(outcome);
    return total;
}

double
ist(const Pmf &observed, const std::vector<BasisState> &correct)
{
    double best_correct = 0.0;
    for (BasisState outcome : correct)
        best_correct = std::max(best_correct, observed.prob(outcome));

    double best_incorrect = 0.0;
    for (const auto &[outcome, p] : observed.probabilities()) {
        if (std::find(correct.begin(), correct.end(), outcome) ==
            correct.end()) {
            best_incorrect = std::max(best_incorrect, p);
        }
    }
    if (best_incorrect <= 0.0)
        return 1e12;
    return best_correct / best_incorrect;
}

double
fidelity(const Pmf &observed, const Pmf &ideal)
{
    return 1.0 - totalVariationDistance(observed, ideal);
}

double
approximationRatio(const Pmf &observed,
                   const workloads::Workload &workload)
{
    fatalIf(!workload.hasCost(),
            "approximationRatio: workload has no cost function");
    double expected = 0.0;
    for (const auto &[outcome, p] : observed.probabilities())
        expected += p * workload.cost(outcome);
    return expected / workload.maxCost();
}

double
approximationRatioGap(const Pmf &observed,
                      const workloads::Workload &workload)
{
    const double ar_ideal =
        approximationRatio(workload.idealPmf(), workload);
    const double ar_observed = approximationRatio(observed, workload);
    fatalIf(ar_ideal <= 0.0, "approximationRatioGap: ideal AR is zero");
    return 100.0 * (ar_ideal - ar_observed) / ar_ideal;
}

Interval
pstWilsonInterval(const Histogram &observed,
                  const std::vector<BasisState> &correct, double z)
{
    fatalIf(observed.totalCount() == 0,
            "pstWilsonInterval: empty histogram");
    fatalIf(z <= 0.0, "pstWilsonInterval: z must be positive");
    const double n = static_cast<double>(observed.totalCount());
    double successes = 0.0;
    for (BasisState outcome : correct)
        successes += static_cast<double>(observed.count(outcome));

    const double p = successes / n;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = (p + z2 / (2.0 * n)) / denom;
    const double half =
        z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
    return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

double
pst(const Pmf &observed, const workloads::Workload &workload)
{
    return pst(observed, workload.correctOutcomes());
}

double
ist(const Pmf &observed, const workloads::Workload &workload)
{
    return ist(observed, workload.correctOutcomes());
}

double
fidelity(const Pmf &observed, const workloads::Workload &workload)
{
    return fidelity(observed, workload.idealPmf());
}

} // namespace metrics
} // namespace jigsaw
