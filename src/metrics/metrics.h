/**
 * @file
 * Figures of merit from paper Section 5.5.
 *
 * - PST (Probability of a Successful Trial): probability mass of the
 *   correct outcomes, Eq. (1).
 * - IST (Inference Strength): probability of the strongest correct
 *   outcome over that of the most frequent incorrect outcome, Eq. (2).
 * - Fidelity: 1 - TVD between observed and noise-free distributions,
 *   Eq. (3).
 * - AR / ARG (Approximation Ratio Gap): QAOA-specific, Eq. (4).
 */
#ifndef JIGSAW_METRICS_METRICS_H
#define JIGSAW_METRICS_METRICS_H

#include <vector>

#include "common/histogram.h"
#include "workloads/workload.h"

namespace jigsaw {
namespace metrics {

/** Probability of a Successful Trial: summed mass of @p correct. */
double pst(const Pmf &observed, const std::vector<BasisState> &correct);

/**
 * Inference Strength: P(best correct) / P(most frequent incorrect).
 * Returns a large finite value (1e12) when no incorrect outcome was
 * observed at all.
 */
double ist(const Pmf &observed, const std::vector<BasisState> &correct);

/** Fidelity = 1 - TVD(observed, ideal), in [0, 1]. */
double fidelity(const Pmf &observed, const Pmf &ideal);

/** Expected-cost ratio against the optimum for a cost workload. */
double approximationRatio(const Pmf &observed,
                          const workloads::Workload &workload);

/**
 * Approximation Ratio Gap in percent:
 * 100 * (AR_ideal - AR_observed) / AR_ideal, where AR_ideal is
 * evaluated on the workload's noise-free distribution.
 */
double approximationRatioGap(const Pmf &observed,
                             const workloads::Workload &workload);

/** A two-sided confidence interval. */
struct Interval
{
    double low = 0.0;
    double high = 0.0;
};

/**
 * Wilson score interval for the PST estimated from trial counts:
 * successes = trials landing on a correct outcome, out of the
 * histogram's total. @p z is the normal quantile (1.96 = 95%).
 * Use this to report sampling uncertainty next to any empirical PST.
 */
Interval pstWilsonInterval(const Histogram &observed,
                           const std::vector<BasisState> &correct,
                           double z = 1.96);

/** PST convenience overload evaluating a workload's correct set. */
double pst(const Pmf &observed, const workloads::Workload &workload);

/** IST convenience overload evaluating a workload's correct set. */
double ist(const Pmf &observed, const workloads::Workload &workload);

/** Fidelity convenience overload against a workload's ideal PMF. */
double fidelity(const Pmf &observed, const workloads::Workload &workload);

} // namespace metrics
} // namespace jigsaw

#endif // JIGSAW_METRICS_METRICS_H
