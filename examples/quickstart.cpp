/**
 * @file
 * Quickstart: run a GHZ program on the IBMQ-Toronto model and compare
 * the baseline against JigSaw and JigSaw-M.
 *
 * Build and run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 */
#include <cstdint>
#include <iostream>

#include "common/table.h"
#include "core/jigsaw.h"
#include "device/library.h"
#include "metrics/metrics.h"
#include "sim/simulators.h"
#include "workloads/ghz.h"

int
main()
{
    using namespace jigsaw;

    // 1. A workload: GHZ-8 (any measured QuantumCircuit works).
    const workloads::Ghz ghz(8);

    // 2. A device model and a noisy executor backed by it.
    const device::DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 2021});

    constexpr std::uint64_t trials = 32768;

    // 3. Baseline: noise-aware compile, all trials on the full program.
    const Pmf baseline =
        core::runBaseline(ghz.circuit(), dev, executor, trials);

    // 4. JigSaw: half the trials global, half on size-2 CPMs, then
    //    Bayesian reconstruction. Same total trial budget.
    const core::JigsawResult js =
        core::runJigsaw(ghz.circuit(), dev, executor, trials);

    // 5. JigSaw-M: CPMs of sizes 2..5, reconstructed top-down.
    const core::JigsawResult jsm = core::runJigsaw(
        ghz.circuit(), dev, executor, trials, core::jigsawMOptions());

    ConsoleTable table({"scheme", "PST", "rel. PST", "Fidelity", "IST"});
    const double base_pst = metrics::pst(baseline, ghz);
    auto add = [&](const char *name, const Pmf &pmf) {
        table.addRow({name, ConsoleTable::num(metrics::pst(pmf, ghz), 4),
                      ConsoleTable::num(metrics::pst(pmf, ghz) / base_pst,
                                        2),
                      ConsoleTable::num(metrics::fidelity(pmf, ghz), 4),
                      ConsoleTable::num(metrics::ist(pmf, ghz), 2)});
    };
    add("baseline", baseline);
    add("jigsaw", js.output);
    add("jigsaw-m", jsm.output);

    std::cout << "GHZ-8 on " << dev.name() << " (" << trials
              << " trials)\n\n";
    table.print(std::cout);
    std::cout << "\nglobal-mode trials: " << js.globalTrials
              << ", subset-mode trials: " << js.subsetTrials << " across "
              << js.cpms.size() << " CPMs\n";
    return 0;
}
