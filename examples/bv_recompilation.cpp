/**
 * @file
 * Inside a JigSaw run: Bernstein-Vazirani with a look at what CPM
 * recompilation does — which physical qubits each CPM measures, their
 * calibrated readout errors, and the per-CPM expected success.
 *
 * Useful as a template for debugging a workload's compilation
 * quality before spending real trial budget.
 */
#include <cstdint>
#include <iostream>

#include "common/table.h"
#include "core/jigsaw.h"
#include "device/library.h"
#include "metrics/metrics.h"
#include "sim/simulators.h"
#include "workloads/bv.h"

int
main()
{
    using namespace jigsaw;

    const workloads::BernsteinVazirani bv(6);
    const device::DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 42});
    constexpr std::uint64_t trials = 32768;

    std::cout << "BV-6 on " << dev.name() << ": hidden string "
              << toBitstring(bv.hiddenString(), 6) << "\n\n";

    const core::JigsawResult result =
        core::runJigsaw(bv.circuit(), dev, executor, trials);

    // Global compilation summary.
    const auto &global = result.globalCompiled;
    std::cout << "global mode: " << result.globalTrials << " trials, "
              << global.swapCount << " SWAPs, EPS "
              << ConsoleTable::num(global.eps, 3) << "\n"
              << "qubit layout (logical -> physical):";
    for (int l = 0; l < bv.circuit().nQubits(); ++l)
        std::cout << " q" << l << "->"
                  << global.initialLayout.physicalOf(l);
    std::cout << "\n\n";

    // Per-CPM view: where did recompilation put the measurements?
    ConsoleTable table({"CPM subset", "physical qubits measured",
                        "readout err (%)", "meas. success", "SWAPs"});
    for (const core::CpmRecord &cpm : result.cpms) {
        std::string subset, physical, errors;
        const std::vector<int> measured =
            cpm.compiled.physical.measuredQubits();
        for (std::size_t i = 0; i < cpm.subset.size(); ++i) {
            if (i) {
                subset += ",";
                physical += ",";
                errors += ",";
            }
            subset += std::to_string(cpm.subset[i]);
            physical += std::to_string(measured[i]);
            errors += ConsoleTable::num(
                100.0 * dev.calibration()
                            .qubit(measured[i])
                            .meanReadoutError(),
                1);
        }
        table.addRow({"(" + subset + ")", physical, errors,
                      ConsoleTable::num(cpm.compiled.measurementSuccess,
                                        4),
                      std::to_string(cpm.compiled.swapCount)});
    }
    table.print(std::cout);

    const Pmf baseline =
        core::runBaseline(bv.circuit(), dev, executor, trials);
    std::cout << "\nbaseline PST "
              << ConsoleTable::num(metrics::pst(baseline, bv), 4)
              << "  ->  jigsaw PST "
              << ConsoleTable::num(metrics::pst(result.output, bv), 4)
              << "\nreconstructed mode: "
              << toBitstring(result.output.mode(), 6)
              << (result.output.mode() == bv.hiddenString()
                      ? " (correct)"
                      : " (WRONG)")
              << "\n";
    return 0;
}
