/**
 * @file
 * Device explorer: dump the topology and calibration of every bundled
 * device model, plus the derived statistics the compiler cares about.
 *
 * Run with a device name to restrict the output:
 *     ./device_explorer ibmq-toronto
 */
#include <iostream>
#include <string>
#include <vector>

#include "common/statistics.h"
#include "common/table.h"
#include "device/library.h"

namespace {

void
describe(const jigsaw::device::DeviceModel &dev)
{
    using namespace jigsaw;

    const device::Topology &topo = dev.topology();
    const device::Calibration &cal = dev.calibration();

    std::cout << "== " << dev.name() << " ==\n"
              << "qubits: " << topo.nQubits()
              << ", coupling edges: " << topo.edges().size() << "\n";

    const std::vector<double> readout = cal.readoutErrors();
    std::cout << "readout error: mean "
              << ConsoleTable::num(100 * stats::mean(readout), 2)
              << "%, median "
              << ConsoleTable::num(100 * stats::median(readout), 2)
              << "%, min "
              << ConsoleTable::num(100 * stats::min(readout), 2)
              << "%, max "
              << ConsoleTable::num(100 * stats::max(readout), 2)
              << "%\n";

    std::vector<double> edge_errors;
    for (std::size_t e = 0; e < topo.edges().size(); ++e)
        edge_errors.push_back(cal.edgeError(static_cast<int>(e)));
    std::cout << "2q gate error: median "
              << ConsoleTable::num(100 * stats::median(edge_errors), 2)
              << "%, max "
              << ConsoleTable::num(100 * stats::max(edge_errors), 2)
              << "%\n";

    std::cout << "best readout qubits:";
    for (int q : cal.bestReadoutQubits(5)) {
        std::cout << " " << q << " ("
                  << ConsoleTable::num(
                         100 * cal.qubit(q).meanReadoutError(), 2)
                  << "%)";
    }
    std::cout << "\n";

    ConsoleTable table({"qubit", "readout e01 (%)", "readout e10 (%)",
                        "crosstalk gamma", "1q err (%)", "degree"});
    for (int q = 0; q < topo.nQubits(); ++q) {
        const device::QubitCalibration &qc = cal.qubit(q);
        table.addRow(
            {std::to_string(q),
             ConsoleTable::num(100 * qc.readoutError01, 2),
             ConsoleTable::num(100 * qc.readoutError10, 2),
             ConsoleTable::num(qc.crosstalkGamma, 4),
             ConsoleTable::num(100 * qc.error1q, 3),
             std::to_string(topo.neighbors(q).size())});
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace jigsaw;

    if (argc > 1) {
        describe(device::byName(argv[1]));
        return 0;
    }
    for (const device::DeviceModel &dev : device::evaluationDevices())
        describe(dev);
    describe(device::sycamore());
    return 0;
}
