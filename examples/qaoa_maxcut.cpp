/**
 * @file
 * QAOA MaxCut workflow: optimize angles classically, run the ansatz
 * on a noisy device model, and compare the Approximation Ratio Gap
 * (the paper's Table 5 metric) across baseline, JigSaw, and JigSaw-M.
 *
 * Demonstrates the cost-function side of the Workload API and why a
 * variational workload benefits from measurement-error mitigation:
 * the expectation value, not just the argmax, gets cleaner.
 */
#include <cstdint>
#include <iostream>

#include "common/table.h"
#include "core/jigsaw.h"
#include "device/library.h"
#include "metrics/metrics.h"
#include "sim/simulators.h"
#include "workloads/qaoa.h"

int
main()
{
    using namespace jigsaw;

    // MaxCut on a 10-vertex path with a depth-2 ansatz. Construction
    // runs the Nelder-Mead outer loop against the noiseless simulator.
    const workloads::QaoaMaxCut qaoa(10, 2);

    std::cout << "QAOA MaxCut: " << qaoa.name() << "\n"
              << "optimized angles (gamma, beta) per layer:\n";
    for (const auto &[gamma, beta] : qaoa.angles()) {
        std::cout << "  (" << ConsoleTable::num(gamma, 4) << ", "
                  << ConsoleTable::num(beta, 4) << ")\n";
    }
    std::cout << "noiseless expected cut: "
              << ConsoleTable::num(qaoa.expectedCost(qaoa.idealPmf()), 3)
              << " of max " << qaoa.maxCost() << "\n\n";

    const device::DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 77});
    constexpr std::uint64_t trials = 32768;

    const Pmf baseline =
        core::runBaseline(qaoa.circuit(), dev, executor, trials);
    const core::JigsawResult js =
        core::runJigsaw(qaoa.circuit(), dev, executor, trials);
    const core::JigsawResult jsm = core::runJigsaw(
        qaoa.circuit(), dev, executor, trials, core::jigsawMOptions());

    ConsoleTable table({"scheme", "ARG (%)", "approx. ratio",
                        "PST of optimal cuts"});
    auto add = [&](const char *name, const Pmf &pmf) {
        table.addRow(
            {name,
             ConsoleTable::num(metrics::approximationRatioGap(pmf, qaoa),
                               2),
             ConsoleTable::num(metrics::approximationRatio(pmf, qaoa),
                               4),
             ConsoleTable::num(metrics::pst(pmf, qaoa), 4)});
    };
    add("baseline", baseline);
    add("jigsaw", js.output);
    add("jigsaw-m", jsm.output);
    std::cout << "on " << dev.name() << " (" << trials
              << " trials; lower ARG is better):\n";
    table.print(std::cout);
    return 0;
}
