/**
 * @file
 * QASM interchange: take an externally authored OpenQASM 2.0 program
 * through the whole JigSaw pipeline, and export the compiled physical
 * circuit back to QASM for inspection with other tools.
 */
#include <cstdint>
#include <iostream>
#include <string>

#include "circuit/qasm.h"
#include "common/table.h"
#include "core/jigsaw.h"
#include "device/library.h"
#include "sim/simulators.h"

int
main()
{
    using namespace jigsaw;

    // A 5-qubit GHZ program as it might arrive from a Qiskit export.
    const std::string source = R"(OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
cx q[3],q[4];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
measure q[3] -> c[3];
measure q[4] -> c[4];
)";

    const circuit::QuantumCircuit logical = circuit::fromQasm(source);
    std::cout << "parsed program: " << logical.nQubits() << " qubits, "
              << logical.countTwoQubitGates() << " CX, depth "
              << logical.depth() << "\n\n";

    const device::DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 11});
    constexpr std::uint64_t trials = 16384;

    const core::JigsawResult result =
        core::runJigsaw(logical, dev, executor, trials);

    std::cout << "top outcomes after JigSaw reconstruction:\n";
    ConsoleTable table({"outcome", "probability"});
    int shown = 0;
    for (const auto &[outcome, p] : result.output.sorted()) {
        if (++shown > 4)
            break;
        table.addRow({toBitstring(outcome, logical.nClbits()),
                      ConsoleTable::num(p, 4)});
    }
    table.print(std::cout);

    std::cout << "\ncompiled global circuit (first lines of QASM "
                 "export):\n";
    const std::string exported =
        circuit::toQasm(result.globalCompiled.physical);
    std::cout << exported.substr(0, exported.find("measure"))
              << "...\n";
    return 0;
}
