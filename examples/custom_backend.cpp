/**
 * @file
 * Bringing your own backend: JigSaw is written against the
 * sim::Executor interface, so any trial source — a hardware client, a
 * different simulator — plugs in. This example wraps the bundled
 * noisy simulator with a drifting readout channel (errors grow over
 * the session, as real calibrations decay between daily calibrations)
 * and shows JigSaw still helps.
 */
#include <cstdint>
#include <iostream>

#include "common/table.h"
#include "core/jigsaw.h"
#include "device/library.h"
#include "metrics/metrics.h"
#include "sim/simulators.h"
#include "workloads/ghz.h"

namespace {

using namespace jigsaw;

/**
 * An Executor whose readout errors drift upward with every run,
 * modeling intra-day calibration decay. The compiler still sees the
 * morning calibration — exactly the staleness real deployments face.
 */
class DriftingBackend : public sim::Executor
{
  public:
    DriftingBackend(const device::DeviceModel &dev, double drift_per_run)
        : base_(dev), driftPerRun_(drift_per_run)
    {
    }

    Histogram
    run(const circuit::QuantumCircuit &physical,
        std::uint64_t shots) override
    {
        // Rebuild a drifted device model for this run.
        device::Calibration drifted = base_.calibration();
        const double factor = 1.0 + driftPerRun_ * runs_;
        for (int q = 0; q < base_.nQubits(); ++q) {
            drifted.qubit(q).readoutError01 =
                std::min(0.5, drifted.qubit(q).readoutError01 * factor);
            drifted.qubit(q).readoutError10 =
                std::min(0.5, drifted.qubit(q).readoutError10 * factor);
        }
        device::DeviceModel dev(base_.name(), base_.topology(),
                                std::move(drifted));
        sim::NoisySimulator backend(std::move(dev),
                                    {.seed = 500 + runs_});
        ++runs_;
        return backend.run(physical, shots);
    }

  private:
    device::DeviceModel base_;
    double driftPerRun_;
    std::uint64_t runs_ = 0;
};

} // namespace

int
main()
{
    const workloads::Ghz ghz(10);
    const device::DeviceModel dev = device::toronto();
    constexpr std::uint64_t trials = 32768;

    // 2% multiplicative readout drift per submitted circuit.
    DriftingBackend backend(dev, 0.02);

    const Pmf baseline =
        core::runBaseline(ghz.circuit(), dev, backend, trials);
    const core::JigsawResult js =
        core::runJigsaw(ghz.circuit(), dev, backend, trials);

    ConsoleTable table({"scheme", "PST", "Fidelity"});
    table.addRow({"baseline (drifting backend)",
                  ConsoleTable::num(metrics::pst(baseline, ghz), 4),
                  ConsoleTable::num(metrics::fidelity(baseline, ghz),
                                    4)});
    table.addRow({"jigsaw (drifting backend)",
                  ConsoleTable::num(metrics::pst(js.output, ghz), 4),
                  ConsoleTable::num(metrics::fidelity(js.output, ghz),
                                    4)});

    std::cout << "GHZ-10 via a custom Executor with intra-session "
                 "readout drift\n\n";
    table.print(std::cout);
    std::cout << "\nany trial source implementing sim::Executor plugs "
                 "into runJigsaw/runEdm unchanged.\n";
    return 0;
}
